"""Tests for the paged KV block manager."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ServingError
from repro.llm.blocks import BlockManager, paged_accounting_enabled


class TestAllocation:
    def test_basic_alloc_free(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        assert bm.n_blocks == 10
        a = bm.allocate(40)
        assert len(a.block_ids) == 3
        assert bm.used_blocks == 3
        bm.release(a)
        assert bm.used_blocks == 0
        bm.check_invariants()

    def test_rounding_up(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        assert bm.blocks_needed(1) == 1
        assert bm.blocks_needed(16) == 1
        assert bm.blocks_needed(17) == 2

    def test_capacity_error(self):
        bm = BlockManager(capacity_tokens=32, block_tokens=16)
        with pytest.raises(CapacityError):
            bm.allocate(100)

    def test_can_allocate(self):
        bm = BlockManager(capacity_tokens=32, block_tokens=16)
        assert bm.can_allocate(32)
        assert not bm.can_allocate(33)

    def test_invalid_params(self):
        with pytest.raises(ServingError):
            BlockManager(capacity_tokens=0)
        with pytest.raises(ServingError):
            BlockManager(capacity_tokens=16, block_tokens=0)

    def test_capacity_below_one_block_rejected(self):
        # A sub-block capacity would silently yield a zero-block pool that
        # can never admit anything; fail loudly at construction instead.
        with pytest.raises(ServingError):
            BlockManager(capacity_tokens=15, block_tokens=16)

    def test_allocate_zero_tokens(self):
        """An empty allocation is valid (a decode tail before its first
        token): zero blocks drawn, grow and release both work."""
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(0)
        assert a.block_ids == [] and a.n_tokens == 0
        assert bm.used_blocks == 0
        bm.grow(a, 5)
        assert len(a.block_ids) == 1 and a.n_tokens == 5
        bm.release(a)
        assert bm.used_blocks == 0
        bm.check_invariants()

    def test_allocate_negative_rejected(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        with pytest.raises(ServingError):
            bm.allocate(-1)


class TestForkRelease:
    def test_fork_shares_blocks(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(32)
        b = bm.fork(a)
        assert b.block_ids == a.block_ids
        assert bm.used_blocks == 2  # shared, not doubled
        bm.release(a)
        assert bm.used_blocks == 2  # still referenced by b
        bm.release(b)
        assert bm.used_blocks == 0
        bm.check_invariants()

    def test_double_free_rejected(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(16)
        b = bm.fork(a)
        bm.release(a)
        bm.release(b)
        with pytest.raises(ServingError):
            bm.release(b)

    def test_fork_of_freed_rejected(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(16)
        keep = bm.fork(a)
        bm.release(a)
        bm.release(keep)
        with pytest.raises(ServingError):
            bm.fork(keep)

    def test_fork_after_release_rejected(self):
        """Forking a released allocation must fail even while its blocks
        are still live through another reference."""
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(32)
        keep = bm.fork(a)
        bm.release(a)
        with pytest.raises(ServingError):
            bm.fork(a)  # a is released; keep still holds the blocks
        assert bm.used_blocks == 2
        bm.release(keep)
        bm.check_invariants()


class TestGrow:
    def test_grow_within_block(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(10)
        bm.grow(a, 5)
        assert len(a.block_ids) == 1 and a.n_tokens == 15

    def test_grow_across_blocks(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(10)
        bm.grow(a, 10)
        assert len(a.block_ids) == 2 and a.n_tokens == 20

    def test_grow_capacity_error(self):
        bm = BlockManager(capacity_tokens=32, block_tokens=16)
        a = bm.allocate(32)
        with pytest.raises(CapacityError):
            bm.grow(a, 1)

    def test_grow_by_zero_is_noop(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(10)
        bm.grow(a, 0)
        assert len(a.block_ids) == 1 and a.n_tokens == 10
        assert bm.used_blocks == 1
        bm.check_invariants()

    def test_grow_negative_rejected(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(10)
        with pytest.raises(ServingError):
            bm.grow(a, -1)

    def test_grow_released_rejected(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(10)
        bm.release(a)
        with pytest.raises(ServingError):
            bm.grow(a, 1)


class TestSplit:
    def test_split_on_block_boundary(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(32)
        head, tail = bm.split(a, 16)
        assert a.released
        assert head.n_tokens == 16 and len(head.block_ids) == 1
        assert tail.n_tokens == 16 and len(tail.block_ids) == 1
        assert set(head.block_ids).isdisjoint(tail.block_ids)
        assert bm.used_blocks == 2
        bm.release(head)
        bm.release(tail)
        assert bm.used_blocks == 0
        bm.check_invariants()

    def test_split_inside_block_shares_straddle(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(20)  # 2 blocks
        head, tail = bm.split(a, 10)
        # The cut falls inside block 0: both halves own it.
        assert head.block_ids == [a.block_ids[0]]
        assert tail.block_ids == a.block_ids
        assert bm.used_blocks == 2
        bm.release(tail)
        # Straddle block survives through head's reference.
        assert bm.used_blocks == 1
        bm.release(head)
        assert bm.used_blocks == 0
        bm.check_invariants()

    def test_split_bounds_rejected(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(20)
        for bad in (0, 20, -3, 25):
            with pytest.raises(ServingError):
                bm.split(a, bad)
        head, tail = bm.split(a, 5)
        with pytest.raises(ServingError):
            bm.split(a, 5)  # consumed

    def test_resplit_of_tail_respects_block_offsets(self):
        """Regression: the tail of a mid-block split starts partway into
        its first block, so a further split of it must compute block
        boundaries from the absolute position — not from token 0 — or a
        surviving node ends up owning the wrong block and eviction can free
        a block that still backs cached tokens."""
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(20)  # tokens 0..19 over [b0, b1]
        b0, b1 = a.block_ids
        head, tail = bm.split(a, 10)  # tail: tokens 10..19, offset 10 in b0
        assert tail.start_offset == 10
        # Cut the tail at its 6th token == absolute token 16: a true block
        # boundary, so no straddle, and the halves own disjoint blocks.
        t1, t2 = bm.split(tail, 6)
        assert t1.block_ids == [b0] and t1.start_offset == 10
        assert t2.block_ids == [b1] and t2.start_offset == 0
        bm.release(head)
        bm.release(t1)
        # b0 fully released (head + first-split straddle + t1); b1 lives.
        assert bm.used_blocks == 1
        # A further mid-block cut of t2 straddle-shares b1 correctly.
        t2a, t2b = bm.split(t2, 2)
        assert t2a.block_ids == [b1] and t2b.block_ids == [b1]
        bm.release(t2b)
        assert bm.used_blocks == 1  # t2a still holds b1
        bm.release(t2a)
        assert bm.used_blocks == 0
        bm.check_invariants()

    def test_split_preserves_forked_references(self):
        """A fork taken before the split stays valid: same block ids, own
        refcounts."""
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(40)
        clone = bm.fork(a)
        head, tail = bm.split(a, 18)
        bm.release(head)
        bm.release(tail)
        assert bm.used_blocks == 3  # clone still holds all three
        bm.release(clone)
        assert bm.used_blocks == 0
        bm.check_invariants()


class TestEnvFlag:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_PAGED", raising=False)
        assert paged_accounting_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " 0 "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SERVING_PAGED", value)
        assert not paged_accounting_enabled()


class TestRandomizedChurn:
    @pytest.mark.parametrize("seed", range(5))
    def test_alloc_fork_grow_release_churn(self, seed):
        """Random interleaving of every operation, invariants checked after
        each one; ends fully drained."""
        rng = random.Random(seed)
        bm = BlockManager(capacity_tokens=64 * 16, block_tokens=16)
        live = []
        for _ in range(300):
            op = rng.random()
            if op < 0.35 or not live:
                n = rng.randrange(0, 40)
                if bm.can_allocate(n):
                    live.append(bm.allocate(n))
                else:
                    with pytest.raises(CapacityError):
                        bm.allocate(n)
            elif op < 0.55:
                live.append(bm.fork(rng.choice(live)))
            elif op < 0.75:
                a = rng.choice(live)
                extra = rng.randrange(0, 24)
                if bm.blocks_needed(a.start_offset + a.n_tokens + extra) - len(
                    a.block_ids
                ) <= bm.free_blocks:
                    bm.grow(a, extra)
                else:
                    with pytest.raises(CapacityError):
                        bm.grow(a, extra)
            elif op < 0.9:
                bm.release(live.pop(rng.randrange(len(live))))
            else:
                a = live.pop(rng.randrange(len(live)))
                if a.n_tokens >= 2:
                    cut = rng.randrange(1, a.n_tokens)
                    live.extend(bm.split(a, cut))
                else:
                    live.append(a)
            bm.check_invariants()
        for a in live:
            bm.release(a)
        bm.check_invariants()
        assert bm.used_blocks == 0
        assert bm.free_blocks == bm.n_blocks


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10))
    def test_alloc_release_conserves_blocks(self, sizes):
        bm = BlockManager(capacity_tokens=1600, block_tokens=16)
        allocs = [bm.allocate(s) for s in sizes]
        assert bm.used_blocks == sum(bm.blocks_needed(s) for s in sizes)
        for a in allocs:
            bm.release(a)
        assert bm.used_blocks == 0
        bm.check_invariants()

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=8),
           st.integers(min_value=0, max_value=7))
    def test_fork_refcount_consistency(self, sizes, fork_idx):
        bm = BlockManager(capacity_tokens=3200, block_tokens=16)
        allocs = [bm.allocate(s) for s in sizes]
        idx = fork_idx % len(allocs)
        clone = bm.fork(allocs[idx])
        for a in allocs:
            bm.release(a)
        assert bm.used_blocks == len(clone.block_ids)
        bm.release(clone)
        assert bm.used_blocks == 0
        bm.check_invariants()
