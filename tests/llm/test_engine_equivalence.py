"""Randomized equivalence: event-driven engine vs the stepwise oracle.

The event engine must reproduce the stepwise loop's integer metrics
*exactly* (cached/prefill/decode tokens, peak KV, batch sizes, decode
steps, cache hit/miss/evicted counters) and its clocks to float rounding
(1e-6 relative) — the closed-form decode-run sum replaces a per-token
accumulation, so bit-identical floats are not expected.

The radix cache's extended invariants (pin refcounts, heap coverage) are
checked after every run.
"""

import random

import pytest

from repro.errors import CapacityError
from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.radix import (
    pack_tokens,
    serving_fastpath_enabled,
    serving_radix_enabled,
)
from repro.llm.request import Request


def random_workload(rng, n_requests=40, vocab=50, max_len=60, max_out=12):
    """Requests with heavy (but randomized) prefix sharing, including
    zero-output requests and fully distinct prompts."""
    pool = [
        tuple(rng.randrange(vocab) for _ in range(rng.randrange(5, max_len)))
        for _ in range(5)
    ]
    reqs = []
    for i in range(n_requests):
        if rng.random() < 0.7:
            base = rng.choice(pool)
            base = base[: rng.randrange(1, len(base) + 1)]
        else:
            base = ()
        suffix = tuple(
            rng.randrange(vocab) for _ in range(rng.randrange(0, max_len))
        )
        toks = base + suffix or (rng.randrange(vocab),)
        out = 0 if rng.random() < 0.1 else rng.randrange(1, max_out)
        # Half the requests carry packed probes (as client-built requests
        # do), so both compare paths are exercised against the oracle.
        packed = pack_tokens(toks) if rng.random() < 0.5 else None
        reqs.append(
            Request(
                request_id=i,
                prompt_tokens=toks,
                output_tokens=out,
                prompt_bytes=packed,
            )
        )
    return reqs


def run_mode(requests, mode, waves=1, **cfg_kwargs):
    # This suite checks replay-mode (event vs stepwise) equivalence; its
    # tight-capacity workloads are sized in tokens, so it runs on the
    # token-sum accounting oracle. Paged-accounting equivalence (including
    # event vs stepwise under blocks) lives in test_paged_equivalence.py.
    cfg_kwargs.setdefault("kv_accounting", "tokens")
    eng = SimulatedLLMEngine(
        LLAMA3_8B, CLUSTER_1XL4, EngineConfig(mode=mode, **cfg_kwargs)
    )
    results = []
    per_wave = max(1, len(requests) // waves)
    for w in range(waves):
        chunk = requests[w * per_wave : (w + 1) * per_wave if w < waves - 1 else None]
        eng.submit_all(chunk)
        results.append(eng.run())
        eng.cache.check_invariants()
    return eng, results


def assert_equivalent(requests, waves=1, **cfg_kwargs):
    # Oracle requests are rebuilt so both engines see fresh Request objects.
    oracle_reqs = [
        Request(
            r.request_id, r.prompt_tokens, r.output_tokens,
            prompt_bytes=r.prompt_bytes,
        )
        for r in requests
    ]
    e_step, r_step = run_mode(oracle_reqs, "stepwise", waves=waves, **cfg_kwargs)
    e_evt, r_evt = run_mode(requests, "event", waves=waves, **cfg_kwargs)

    assert e_step.mode == "stepwise" and e_evt.mode == "event"
    # The stepwise oracle always keeps the node tree + scan eviction; the
    # event engine resolves the fast cache (flat array-backed when numpy
    # and REPRO_SERVING_RADIX allow, node tree + lazy heap otherwise).
    assert e_step.cache.backend == "node" and e_step.cache.eviction == "scan"
    if serving_radix_enabled() and serving_fastpath_enabled():
        assert e_evt.cache.backend == "flat"
    else:
        # REPRO_SERVING_FASTPATH=0 also forces the scan eviction oracle.
        assert e_evt.cache.backend == "node"
        expected = "heap" if serving_fastpath_enabled() else "scan"
        assert e_evt.cache.eviction == expected

    for rs, re in zip(r_step, r_evt):
        # Integer metrics: identical.
        assert re.prompt_tokens == rs.prompt_tokens
        assert re.cached_tokens == rs.cached_tokens
        assert re.prefill_tokens == rs.prefill_tokens
        assert re.decode_tokens == rs.decode_tokens
        assert re.decode_steps == rs.decode_steps
        assert re.peak_kv_tokens == rs.peak_kv_tokens
        assert re.max_batch_seen == rs.max_batch_seen
        # Clocks: float rounding only.
        assert re.total_seconds == pytest.approx(
            rs.total_seconds, rel=1e-6, abs=1e-9
        )
        assert len(re.request_metrics) == len(rs.request_metrics)
        for ms, me in zip(rs.request_metrics, re.request_metrics):
            assert me.request_id == ms.request_id
            assert me.prompt_tokens == ms.prompt_tokens
            assert me.cached_tokens == ms.cached_tokens
            assert me.prefill_tokens == ms.prefill_tokens
            assert me.output_tokens == ms.output_tokens
            assert me.admitted_at_s == pytest.approx(
                ms.admitted_at_s, rel=1e-6, abs=1e-9
            )
            assert me.first_token_at_s == pytest.approx(
                ms.first_token_at_s, rel=1e-6, abs=1e-9
            )
            assert me.finished_at_s == pytest.approx(
                ms.finished_at_s, rel=1e-6, abs=1e-9
            )

    # Cache-level counters: identical call sequence, identical victims.
    assert e_evt.cache.hits == e_step.cache.hits
    assert e_evt.cache.misses == e_step.cache.misses
    assert e_evt.cache.evicted_tokens == e_step.cache.evicted_tokens
    assert e_evt.cache.total_tokens == e_step.cache.total_tokens


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_roomy_capacity(self, seed):
        rng = random.Random(seed)
        assert_equivalent(random_workload(rng))

    @pytest.mark.parametrize("seed", range(8))
    def test_memory_pressure(self, seed):
        """Tight KV capacity: constant eviction and blocked admissions."""
        rng = random.Random(1000 + seed)
        reqs = random_workload(rng, n_requests=30, max_len=40, max_out=8)
        # Feasible by construction: every request fits alone even when a
        # protected partially-matched edge keeps a whole node resident
        # (hence the extra max-prompt-length of headroom).
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)
        assert_equivalent(
            reqs, kv_capacity_tokens=need + slack, max_batch_size=8
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_tiny_batch(self, seed):
        rng = random.Random(2000 + seed)
        assert_equivalent(random_workload(rng, n_requests=20), max_batch_size=2)

    @pytest.mark.parametrize("seed", range(4))
    def test_no_cache_baseline(self, seed):
        rng = random.Random(3000 + seed)
        reqs = random_workload(rng, n_requests=25, max_out=6)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        assert_equivalent(
            reqs,
            enable_prefix_cache=False,
            kv_capacity_tokens=3 * need,
            max_batch_size=16,
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_persistent_cache_across_runs(self, seed):
        """Multi-wave replay through one engine (the long-lived-server
        shape multi-invocation queries rely on)."""
        rng = random.Random(4000 + seed)
        assert_equivalent(random_workload(rng, n_requests=45), waves=3)

    def test_zero_output_only(self):
        reqs = [
            Request(i, tuple(range(10 * i, 10 * i + 5)), 0) for i in range(6)
        ]
        assert_equivalent(reqs)

    def test_uniform_outputs_single_completion_event(self):
        """All requests finish on the same step: one big closed-form jump."""
        shared = tuple(range(50))
        reqs = [Request(i, shared, 32) for i in range(10)]
        assert_equivalent(reqs)


class TestEventModeBasics:
    def test_default_mode_is_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_FASTPATH", raising=False)
        monkeypatch.delenv("REPRO_SERVING_VECTOR", raising=False)
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        assert eng.mode == "vector"
        if serving_radix_enabled() and serving_fastpath_enabled():
            assert eng.cache.backend == "flat"
        else:
            assert eng.cache.eviction == "heap"

    def test_vector_flag_selects_scalar_event(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_FASTPATH", raising=False)
        monkeypatch.setenv("REPRO_SERVING_VECTOR", "0")
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        assert eng.mode == "event"
        if serving_radix_enabled() and serving_fastpath_enabled():
            assert eng.cache.backend == "flat"
        else:
            assert eng.cache.eviction == "heap"

    def test_radix_flag_selects_node_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_FASTPATH", raising=False)
        monkeypatch.delenv("REPRO_SERVING_VECTOR", raising=False)
        monkeypatch.setenv("REPRO_SERVING_RADIX", "0")
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        assert eng.mode == "vector"
        assert eng.cache.backend == "node"
        assert eng.cache.eviction == "heap"

    def test_env_flag_selects_oracle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_FASTPATH", "0")
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        assert eng.mode == "stepwise"
        assert eng.cache.backend == "node"
        assert eng.cache.eviction == "scan"

    def test_capacity_error_in_both_modes(self):
        big = Request(0, tuple(range(2000)), 10)
        for mode in ("vector", "event", "stepwise"):
            eng = SimulatedLLMEngine(
                LLAMA3_8B,
                CLUSTER_1XL4,
                EngineConfig(mode=mode, kv_capacity_tokens=500),
            )
            eng.submit(Request(0, big.prompt_tokens, big.output_tokens))
            with pytest.raises(CapacityError):
                eng.run()

    def test_decode_run_time_matches_stepwise_sum(self):
        """The arithmetic-series closed form == the per-step sum."""
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        cost = eng.cost
        contexts = [17, 301, 64, 5]
        steps = 37
        total = 0.0
        cur = list(contexts)
        for _ in range(steps):
            total += cost.decode_step_time(cur)
            cur = [c + 1 for c in cur]
        closed = cost.decode_run_time(sum(contexts), len(contexts), steps)
        assert closed == pytest.approx(total, rel=1e-9)

    def test_decode_run_time_degenerate(self):
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        assert eng.cost.decode_run_time(100, 4, 0) == 0.0
        assert eng.cost.decode_run_time(0, 0, 5) == 0.0
