"""Tests for the lifecycle-tracing module: gates, span structure,
Chrome/JSONL export, ``trace-report``, edge cases (empty / single-request
/ all-shed traces), and the CLI surfacing (``--emit-trace``,
``repro trace-report``, server/cluster plumbing)."""

import json
import random

import pytest

from repro.cli import main
from repro.errors import ReproError, ServingError
from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.request import Request
from repro.llm.scheduler import compute_slo, serving_online_enabled
from repro.llm.tracing import (
    WAITING_SLOT,
    EngineTrace,
    TraceGauge,
    TraceInstant,
    TraceSpan,
    export_chrome,
    export_jsonl,
    serving_trace_enabled,
    trace_report,
    write_trace,
)
from repro.llm.workload import TraceRequest, WorkloadTrace


def simple_requests(n=10, out=3, seed=0):
    rng = random.Random(seed)
    reqs = []
    t = 0.0
    for i in range(n):
        t += rng.uniform(0.005, 0.03)
        toks = tuple(rng.randrange(40) for _ in range(rng.randrange(8, 40)))
        reqs.append(
            Request(
                request_id=i,
                prompt_tokens=toks,
                output_tokens=out,
                arrival_s=t,
                tenant=f"t{i % 2}",
            )
        )
    return reqs


def run_traced(requests, **cfg_kwargs):
    cfg_kwargs.setdefault("trace", "on")
    eng = SimulatedLLMEngine(
        LLAMA3_8B, CLUSTER_1XL4, EngineConfig(**cfg_kwargs)
    )
    eng.submit_all(requests)
    return eng.run()


class TestGate:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_TRACE", raising=False)
        assert not serving_trace_enabled()
        result = run_traced(simple_requests(4), trace="auto")
        assert result.trace is None

    def test_env_enables_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_TRACE", "1")
        assert serving_trace_enabled()
        result = run_traced(simple_requests(4), trace="auto")
        assert result.trace is not None

    def test_explicit_off_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_TRACE", "1")
        result = run_traced(simple_requests(4), trace="off")
        assert result.trace is None

    def test_explicit_on_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_TRACE", raising=False)
        result = run_traced(simple_requests(4), trace="on")
        assert result.trace is not None

    def test_bad_trace_value_rejected(self):
        with pytest.raises(ServingError):
            EngineConfig(trace="loud")


class TestSpanStructure:
    def test_every_request_has_lifecycle(self):
        reqs = simple_requests(10, out=3)
        result = run_traced(reqs, scheduler="fcfs")
        trace = result.trace
        by_req = {}
        for s in trace.spans:
            by_req.setdefault(s.request_id, []).append(s)
        assert set(by_req) == set(range(10))
        for rid, spans in by_req.items():
            names = [s.name for s in spans]
            assert "queued" in names
            assert "prefill" in names
            assert "decode" in names  # out=3 for every request
            for s in spans:
                assert s.tenant == f"t{rid % 2}"
                if s.name == "queued":
                    assert s.slot == WAITING_SLOT
                else:
                    assert s.slot >= 0
                # queued spans may undershoot by float rounding only
                assert s.end_s >= s.start_s - 1e-9

    def test_zero_output_request_decode_is_instantaneous(self):
        reqs = simple_requests(4, out=0)
        result = run_traced(reqs)
        decodes = [s for s in result.trace.spans if s.name == "decode"]
        assert all(s.end_s == s.start_s for s in decodes)

    def test_gauges_sampled_with_expected_keys(self):
        result = run_traced(simple_requests(10), kv_accounting="paged")
        gauges = result.trace.gauges
        assert gauges
        keys = dict(gauges[0].values).keys()
        for expected in (
            "running",
            "waiting",
            "kv_used_tokens",
            "radix_nodes",
            "radix_store_bytes",
        ):
            assert expected in keys
        if result.kv_accounting == "paged":
            assert "kv_blocks_charged" in keys
            assert "kv_blocks_free" in keys

    def test_meta_records_run_shape(self):
        result = run_traced(simple_requests(4), scheduler="sjf")
        meta = result.trace.meta
        assert meta["scheduler"] == result.scheduler
        assert meta["preemption"] == result.preemption
        assert meta["kv_accounting"] == result.kv_accounting
        assert meta["mode"] in ("stepwise", "event", "vector")


class TestChromeExport:
    def make_tracks(self, n_tracks=2):
        return [
            (f"track{k}", run_traced(simple_requests(6, seed=k)).trace)
            for k in range(n_tracks)
        ]

    def test_valid_json_with_process_rows(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome(self.make_tracks(), str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert isinstance(events, list) and events
        procs = {
            ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert procs == {"track0", "track1"}
        for ev in events:
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
                assert "request_id" in ev["args"]

    def test_slot_threads_named(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome(self.make_tracks(1), str(path))
        events = json.loads(path.read_text())["traceEvents"]
        threads = {
            ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert "waiting" in threads
        assert any(t.startswith("slot ") for t in threads)

    def test_counters_present(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome(self.make_tracks(1), str(path))
        events = json.loads(path.read_text())["traceEvents"]
        counters = {ev["name"] for ev in events if ev["ph"] == "C"}
        assert "batch" in counters and "kv" in counters

    def test_instants_exported(self, tmp_path):
        trace = EngineTrace(
            instants=[TraceInstant("preempt", 1.0, (("request_id", 3),))]
        )
        path = tmp_path / "trace.json"
        export_chrome([("x", trace)], str(path))
        events = json.loads(path.read_text())["traceEvents"]
        inst = [ev for ev in events if ev["ph"] == "i"]
        assert len(inst) == 1
        assert inst[0]["name"] == "preempt"
        assert inst[0]["args"] == {"request_id": 3}

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracks = self.make_tracks(1)
        export_jsonl(tracks, str(path))
        recs = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert recs
        assert {r["type"] for r in recs} <= {"span", "instant", "gauge"}
        n_spans = sum(1 for r in recs if r["type"] == "span")
        assert n_spans == len(tracks[0][1].spans)

    def test_write_trace_dispatches_on_extension(self, tmp_path):
        tracks = self.make_tracks(1)
        write_trace(tracks, str(tmp_path / "a.json"))
        write_trace(tracks, str(tmp_path / "a.jsonl"))
        assert "traceEvents" in (tmp_path / "a.json").read_text()
        first = (tmp_path / "a.jsonl").read_text().splitlines()[0]
        assert json.loads(first)["type"] in ("span", "instant", "gauge")


class TestTraceReportEdgeCases:
    """Empty / single-request / all-shed traces must render (no division
    by zero) and the exporters must still emit valid JSON for them."""

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.json"
        export_chrome([("nothing", EngineTrace())], str(path))
        json.loads(path.read_text())  # valid JSON
        report = trace_report(str(path))
        assert "(no spans)" in report

    def test_empty_jsonl(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        export_jsonl([("nothing", EngineTrace())], str(path))
        report = trace_report(str(path))
        assert "(no spans)" in report

    def test_single_request_trace(self, tmp_path):
        result = run_traced(simple_requests(1))
        path = tmp_path / "one.json"
        export_chrome([("solo", result.trace)], str(path))
        report = trace_report(str(path))
        assert "solo" in report
        assert "queue%" in report

    def test_all_shed_trace(self, tmp_path):
        """A trace holding only shed instants (every request rejected
        before running) has zero span seconds — header-only report."""
        trace = EngineTrace(
            instants=[
                TraceInstant(
                    "shed", 0.1 * i, (("request_id", i), ("tenant", "t0"))
                )
                for i in range(5)
            ]
        )
        path = tmp_path / "shed.json"
        export_chrome([("shed-all", trace)], str(path))
        json.loads(path.read_text())
        assert "(no spans)" in trace_report(str(path))

    def test_zero_duration_spans_render(self, tmp_path):
        trace = EngineTrace(
            spans=[TraceSpan("decode", 0, "t0", 0, 1.0, 1.0)],
            gauges=[TraceGauge(1.0, (("running", 1),))],
        )
        path = tmp_path / "zero.json"
        export_chrome([("z", trace)], str(path))
        report = trace_report(str(path))
        assert "z" in report and "0.0%" in report

    def test_per_tenant_rows(self, tmp_path):
        result = run_traced(simple_requests(8))
        path = tmp_path / "tenants.jsonl"
        export_jsonl([("pol", result.trace)], str(path))
        report = trace_report(str(path))
        assert "pol/t0" in report and "pol/t1" in report


class TestTraceReportErrors:
    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json at all")
        with pytest.raises(ReproError):
            trace_report(str(path))

    def test_truncated_jsonl(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        path.write_text(
            '{"type": "span", "track": "a", "name": "decode", '
            '"start_s": 0.0, "end_s": 1.0}\n{"type": "sp'
        )
        with pytest.raises(ReproError):
            trace_report(str(path))

    def test_not_a_trace_document(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ReproError):
            trace_report(str(path))

    def test_span_missing_fields(self, tmp_path):
        path = tmp_path / "fields.jsonl"
        path.write_text('{"type": "span", "track": "a"}\n')
        with pytest.raises(ReproError):
            trace_report(str(path))


class TestComputeSLOEdgeCases:
    def test_empty_metrics(self):
        report = compute_slo([], deadline_s=1.0)
        assert report.n_requests == 0
        assert report.attainment in (0.0, 1.0)
        assert report.render("empty")  # renders without dividing by zero

    def test_single_request(self):
        result = run_traced(simple_requests(1), trace="off")
        report = compute_slo(result.request_metrics, deadline_s=100.0)
        assert report.n_requests == 1
        assert report.attainment == 1.0
        assert report.render("solo")

    def test_all_requests_miss_deadline(self):
        result = run_traced(simple_requests(6), trace="off")
        report = compute_slo(result.request_metrics, deadline_s=1e-9)
        assert report.n_requests == 6
        assert report.attainment == 0.0
        assert report.render("all-late")


class TestCLITraceReport:
    def emit(self, tmp_path, capsys):
        out = tmp_path / "demo.json"
        assert main(
            ["serve-trace", "--scale", "0.004", "--requests", "10",
             "--policy", "fcfs", "--emit-trace", str(out)]
        ) == 0
        capsys.readouterr()
        return out

    def test_emit_then_report(self, tmp_path, capsys):
        out = self.emit(tmp_path, capsys)
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert main(["trace-report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "queue%" in text and "fcfs" in text

    def test_emit_trace_output_mentions_file(self, tmp_path, capsys):
        out = tmp_path / "named.json"
        assert main(
            ["serve-trace", "--scale", "0.004", "--requests", "8",
             "--policy", "fcfs", "--emit-trace", str(out)]
        ) == 0
        assert "trace: wrote" in capsys.readouterr().out

    def test_missing_path_exits_2(self, capsys):
        assert main(["trace-report"]) == 2
        err = capsys.readouterr().err
        assert "trace-report failed:" in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_nonexistent_file_exits_2(self, capsys):
        assert main(["trace-report", "/nonexistent/trace.json"]) == 2
        err = capsys.readouterr().err
        assert "trace-report failed:" in err
        assert "Traceback" not in err

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("]]]")
        assert main(["trace-report", str(path)]) == 2
        err = capsys.readouterr().err
        assert "trace-report failed:" in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_emit_trace_unwritable_dir_exits_2(self, capsys):
        assert main(
            ["serve-trace", "--scale", "0.004", "--requests", "6",
             "--policy", "fcfs",
             "--emit-trace", "/nonexistent-dir/trace.json"]
        ) == 2
        err = capsys.readouterr().err
        assert "serve-trace failed:" in err
        assert "Traceback" not in err

    def test_cluster_emit_trace(self, tmp_path, capsys):
        from repro.llm.cluster import serving_cluster_enabled

        out = tmp_path / "cluster.json"
        assert main(
            ["serve-cluster", "--scale", "0.004", "--requests", "10",
             "--replicas", "2", "--routing", "round-robin",
             "--emit-trace", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "encode cache:" in text  # satellite: fleet telemetry line
        assert "peak_wait" in text
        events = json.loads(out.read_text())["traceEvents"]
        procs = {
            ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        if serving_cluster_enabled():
            assert procs == {
                "round-robin/replica0",
                "round-robin/replica1",
            }
        else:  # gate forces the single-replica reference
            assert procs == {"round-robin/replica0"}


class TestServerTracePlumbing:
    def trace(self, n=6):
        return WorkloadTrace(
            [
                TraceRequest(
                    i * 0.02,
                    f"server trace prompt {i % 3}",
                    tenant=f"t{i % 2}",
                    output_len=2,
                )
                for i in range(n)
            ],
            name="srv",
        )

    def test_export_trace_roundtrip(self, tmp_path):
        from repro.llm.server import BatchInferenceServer

        server = BatchInferenceServer(
            engine_config=EngineConfig(trace="on")
        )
        server.submit_trace("job-a", self.trace())
        path = tmp_path / "job.json"
        server.export_trace("job-a", str(path))
        payload = json.loads(path.read_text())
        procs = {
            ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert procs == {"job-a"}

    def test_export_without_tracing_raises(self, tmp_path, monkeypatch):
        from repro.llm.server import BatchInferenceServer

        monkeypatch.delenv("REPRO_SERVING_TRACE", raising=False)
        server = BatchInferenceServer()
        server.submit_trace("job-b", self.trace())
        with pytest.raises(ServingError):
            server.export_trace("job-b", str(tmp_path / "no.json"))

    def test_cluster_job_tracks_named_per_replica(self, tmp_path):
        from repro.llm.cluster import ClusterConfig, serving_cluster_enabled
        from repro.llm.server import BatchInferenceServer

        server = BatchInferenceServer()
        server.submit_cluster_trace(
            "fleet",
            self.trace(8),
            cluster_config=ClusterConfig(
                n_replicas=2, engine=EngineConfig(trace="on")
            ),
        )
        job = server.job("fleet")
        labels = [label for label, _ in job.trace_tracks]
        if serving_cluster_enabled():
            assert labels == ["fleet/replica0", "fleet/replica1"]
        else:
            assert labels == ["fleet/replica0"]
        path = tmp_path / "fleet.json"
        server.export_trace("fleet", str(path))
        json.loads(path.read_text())


class TestClusterPeakWaiting:
    def test_replica_stats_carry_peak_waiting(self):
        from repro.llm.cluster import ClusterConfig, ClusterEngine

        eng = ClusterEngine(ClusterConfig(n_replicas=2))
        trace = WorkloadTrace(
            [
                TraceRequest(
                    i * 0.002, f"cluster wait prompt {i}", output_len=2
                )
                for i in range(16)
            ]
        )
        res = eng.run_trace(trace)
        assert all(s.peak_waiting >= 0 for s in res.replicas)
        if serving_online_enabled():
            assert any(s.peak_waiting > 0 for s in res.replicas)
        assert "peak_wait" in res.render_replicas()
