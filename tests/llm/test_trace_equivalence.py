"""Randomized equivalence for the lifecycle-tracing layer.

Two contracts (the ISSUE's acceptance axes):

* **Observer invariance**: tracing ON leaves every ``EngineResult``
  metric — integer counters AND float clocks — **bit-identical** to the
  same replay with tracing OFF, across schedulers x preemption x chunked
  prefill x KV accounting, in all three replay modes. The recorder only
  observes; it never perturbs the replay.

* **Mode invariance**: stepwise, event, and vector emit **identical
  span sets** — the same spans, instants, and gauge samples with the
  same simulated-clock stamps under ``==`` — even though the engine
  clocks themselves agree only to float rounding (the recorder's
  canonical clock rebuilds time from mode-invariant deltas; see
  ``repro/llm/tracing.py``). The one excluded value is the
  ``radix_store_bytes`` gauge: the stepwise oracle pins the scan/node
  radix backend, whose byte accounting legitimately differs from the
  flat backend's arena.
"""

import random

import pytest

from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.radix import pack_tokens
from repro.llm.request import Request
from repro.llm.scheduler import serving_online_enabled, serving_preempt_enabled

MODES = ("stepwise", "event", "vector")

#: The full feature matrix the equivalences must hold over. Equivalence
#: is gate-agnostic (both sides of every comparison degrade identically
#: under the oracle env flags), so none of these need skips.
CONFIGS = {
    "baseline": dict(scheduler="fcfs", kv_accounting="tokens"),
    "sjf-recompute-paged": dict(
        scheduler="sjf",
        preemption="recompute",
        kv_accounting="paged",
        block_tokens=16,
        max_batch_size=6,
        kv_capacity_tokens=4096,
    ),
    "deadline-swap-chunked": dict(
        scheduler="deadline",
        preemption="swap",
        prefill_chunk_tokens=32,
        scheduler_deadline_s=1.0,
        max_batch_size=4,
        kv_capacity_tokens=4000,
        kv_accounting="tokens",
    ),
    "fair-share-quota": dict(
        scheduler="fair-share",
        kv_accounting="paged",
        block_tokens=16,
        max_batch_size=6,
        kv_capacity_tokens=4096,
        tenant_kv_quota_blocks={"tenant-0": 64, "tenant-1": 64, "tenant-2": 64},
    ),
}


def trace_workload(rng, n_requests=36, vocab=60, max_len=80, max_out=12):
    """Bursty arrival-stamped requests with heavy prefix sharing, tenant
    tags, per-request deadlines, and zero-output requests — the same
    surface the preemption equivalence suite replays."""
    pool = [
        tuple(rng.randrange(vocab) for _ in range(rng.randrange(8, max_len)))
        for _ in range(5)
    ]
    reqs = []
    t = 0.0
    for i in range(n_requests):
        t += rng.uniform(0.001, 0.02) if rng.random() < 0.8 else rng.uniform(
            0.3, 1.2
        )
        if rng.random() < 0.7:
            base = rng.choice(pool)
            base = base[: rng.randrange(1, len(base) + 1)]
        else:
            base = ()
        suffix = tuple(
            rng.randrange(vocab) for _ in range(rng.randrange(0, max_len))
        )
        toks = base + suffix or (rng.randrange(vocab),)
        out = 0 if rng.random() < 0.08 else rng.randrange(1, max_out)
        packed = pack_tokens(toks) if rng.random() < 0.5 else None
        reqs.append(
            Request(
                request_id=i,
                prompt_tokens=toks,
                output_tokens=out,
                prompt_bytes=packed,
                arrival_s=t,
                tenant=f"tenant-{i % 3}",
                deadline_s=rng.choice([None, 0.5, 1.5, 4.0]),
            )
        )
    return reqs


def clone(requests):
    return [
        Request(
            r.request_id,
            r.prompt_tokens,
            r.output_tokens,
            prompt_bytes=r.prompt_bytes,
            arrival_s=r.arrival_s,
            tenant=r.tenant,
            deadline_s=r.deadline_s,
        )
        for r in requests
    ]


def run_traced(requests, mode, trace, **cfg_kwargs):
    eng = SimulatedLLMEngine(
        LLAMA3_8B,
        CLUSTER_1XL4,
        EngineConfig(mode=mode, trace=trace, **cfg_kwargs),
    )
    eng.submit_all(requests)
    result = eng.run()
    eng.cache.check_invariants()
    return eng, result


RESULT_FIELDS = (
    "prompt_tokens",
    "cached_tokens",
    "prefill_tokens",
    "decode_tokens",
    "decode_steps",
    "peak_kv_tokens",
    "max_batch_seen",
    "n_preemptions",
    "preempted_tokens_recomputed",
    "preempted_tokens_swapped",
    "n_prefill_chunks",
    "peak_kv_blocks",
    "fragmentation_tokens",
    "peak_waiting",
    "total_seconds",  # bit-exact: same mode, tracing must not perturb it
)

METRIC_FIELDS = (
    "request_id",
    "prompt_tokens",
    "cached_tokens",
    "prefill_tokens",
    "output_tokens",
    "n_preemptions",
    "admitted_at_s",
    "first_token_at_s",
    "finished_at_s",
)


def assert_bit_identical(r_off, r_on):
    for f in RESULT_FIELDS:
        assert getattr(r_on, f) == getattr(r_off, f), f
    assert len(r_on.request_metrics) == len(r_off.request_metrics)
    for mo, mn in zip(r_off.request_metrics, r_on.request_metrics):
        for f in METRIC_FIELDS:
            assert getattr(mn, f) == getattr(mo, f), f


def strip_store_bytes(gauges):
    """Gauge samples minus the backend-dependent ``radix_store_bytes``."""
    return [
        (
            g.ts_s,
            tuple(kv for kv in g.values if kv[0] != "radix_store_bytes"),
        )
        for g in gauges
    ]


class TestTracingIsPureObserver:
    """Tracing ON == OFF, bit for bit, over the full feature matrix."""

    @pytest.mark.parametrize("config", sorted(CONFIGS))
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", range(3))
    def test_on_off_bit_identical(self, config, mode, seed):
        rng = random.Random(1000 * sorted(CONFIGS).index(config) + seed)
        reqs = trace_workload(rng)
        cfg = CONFIGS[config]
        e_off, r_off = run_traced(clone(reqs), mode, "off", **cfg)
        e_on, r_on = run_traced(clone(reqs), mode, "on", **cfg)
        assert r_off.trace is None
        assert r_on.trace is not None
        assert_bit_identical(r_off, r_on)
        for attr in ("hits", "misses", "evicted_tokens", "total_tokens"):
            assert getattr(e_on.cache, attr) == getattr(e_off.cache, attr)


class TestModeInvariantSpans:
    """stepwise == event == vector span sets, stamps compared with ==."""

    @pytest.mark.parametrize("config", sorted(CONFIGS))
    @pytest.mark.parametrize("seed", range(3))
    def test_span_sets_identical(self, config, seed):
        rng = random.Random(2000 * sorted(CONFIGS).index(config) + seed)
        reqs = trace_workload(rng)
        cfg = CONFIGS[config]
        traces = {}
        for mode in MODES:
            _, result = run_traced(clone(reqs), mode, "on", **cfg)
            traces[mode] = result.trace
        ref = traces["stepwise"]
        for mode in ("event", "vector"):
            tr = traces[mode]
            assert tr.spans == ref.spans, mode
            assert tr.instants == ref.instants, mode
            assert strip_store_bytes(tr.gauges) == strip_store_bytes(
                ref.gauges
            ), mode
        # The meta records which mode actually replayed each trace.
        for mode in MODES:
            assert traces[mode].meta["mode"] == mode
            assert traces[mode].meta["scheduler"] == ref.meta["scheduler"]

    @pytest.mark.parametrize("seed", range(3))
    def test_peak_waiting_mode_invariant(self, seed):
        """The always-on waiting-depth peak is probe-aligned across modes
        (it feeds the cluster per-replica table, so it must not depend on
        which replay loop a replica ran)."""
        rng = random.Random(3000 + seed)
        reqs = trace_workload(rng)
        peaks = set()
        for mode in MODES:
            _, result = run_traced(
                clone(reqs), mode, "off", scheduler="fcfs", max_batch_size=4
            )
            peaks.add(result.peak_waiting)
        assert len(peaks) == 1
        assert peaks.pop() > 0


@pytest.mark.skipif(
    not (serving_preempt_enabled() and serving_online_enabled()),
    reason="continuous batching disabled "
    "(REPRO_SERVING_PREEMPT=0 or REPRO_SERVING_ONLINE=0)",
)
class TestTraceMachineryFires:
    """Under pressure the trace actually contains the interesting events
    (otherwise the invariance tests above could pass vacuously)."""

    def test_preemption_config_emits_lifecycle(self):
        rng = random.Random(42)
        reqs = trace_workload(rng, n_requests=40)
        _, result = run_traced(
            clone(reqs), "event", "on", **CONFIGS["deadline-swap-chunked"]
        )
        names = {s.name for s in result.trace.spans}
        assert "queued" in names
        assert "prefill" in names or "prefill-chunk" in names
        assert "decode" in names
        if result.n_preemptions:
            assert "preempted:swap" in names
            assert any(
                i.name == "preempt" for i in result.trace.instants
            )
        if result.n_prefill_chunks:
            assert "prefill-chunk" in names
        assert result.trace.gauges, "admission waves must sample gauges"

    def test_multi_run_engine_slices_per_run(self):
        """A long-lived engine's second run collects only its own spans."""
        rng = random.Random(7)
        reqs = trace_workload(rng, n_requests=24)
        eng = SimulatedLLMEngine(
            LLAMA3_8B,
            CLUSTER_1XL4,
            EngineConfig(mode="event", trace="on", scheduler="fcfs"),
        )
        eng.submit_all(clone(reqs[:12]))
        r1 = eng.run()
        eng.submit_all(clone(reqs[12:]))
        r2 = eng.run()
        ids1 = {s.request_id for s in r1.trace.spans}
        ids2 = {s.request_id for s in r2.trace.spans}
        assert ids1 == set(range(12))
        assert ids2 == set(range(12, 24))
