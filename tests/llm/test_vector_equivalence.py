"""Randomized three-way equivalence: vector vs scalar event vs stepwise.

The vectorized replay (numpy request-state arrays, vectorized block pool,
arithmetic tail settling) makes exactly the same scheduling decisions and
runs exactly the same scalar float operations on the clock as the scalar
event loop, so vector vs event is held to **bit-identical** equality —
``==`` on every clock and stamp, not approx — plus identical integer
metrics, cache counters, and paged-block counters. The scalar event loop
is separately anchored to the per-token stepwise oracle at 1e-6 relative
(see test_engine_equivalence.py); the three-way tests here close the
chain vector -> event -> stepwise on shared workloads.

Scope: all scheduler policies, online (timed) arrivals, paged block
accounting, eviction pressure, multi-wave replay, zero-output requests.
"""

import random

import pytest

from repro.llm.blocks import serving_vector_enabled
from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.radix import pack_tokens
from repro.llm.request import Request

pytestmark = pytest.mark.skipif(
    not serving_vector_enabled(),
    reason="vector serving path unavailable (numpy missing or "
    "REPRO_SERVING_VECTOR=0)",
)


def random_workload(rng, n_requests=40, vocab=50, max_len=60, max_out=12):
    """Prefix-sharing requests with tenants, zero-output rows, and mixed
    packed/unpacked probes (same generator family as the sibling suites)."""
    pool = [
        tuple(rng.randrange(vocab) for _ in range(rng.randrange(5, max_len)))
        for _ in range(5)
    ]
    reqs = []
    for i in range(n_requests):
        if rng.random() < 0.7:
            base = rng.choice(pool)
            base = base[: rng.randrange(1, len(base) + 1)]
        else:
            base = ()
        suffix = tuple(
            rng.randrange(vocab) for _ in range(rng.randrange(0, max_len))
        )
        toks = base + suffix or (rng.randrange(vocab),)
        out = 0 if rng.random() < 0.1 else rng.randrange(1, max_out)
        packed = pack_tokens(toks) if rng.random() < 0.5 else None
        reqs.append(
            Request(
                request_id=i,
                prompt_tokens=toks,
                output_tokens=out,
                prompt_bytes=packed,
                tenant=f"t{i % 3}",
            )
        )
    return reqs


def clone(requests):
    """Fresh Request objects (the engine mutates its requests in place)."""
    return [
        Request(
            r.request_id,
            r.prompt_tokens,
            r.output_tokens,
            prompt_bytes=r.prompt_bytes,
            arrival_s=r.arrival_s,
            tenant=r.tenant,
        )
        for r in requests
    ]


def run_engine(requests, mode, waves=1, **cfg_kwargs):
    eng = SimulatedLLMEngine(
        LLAMA3_8B, CLUSTER_1XL4, EngineConfig(mode=mode, **cfg_kwargs)
    )
    results = []
    per_wave = max(1, len(requests) // waves)
    for w in range(waves):
        chunk = requests[w * per_wave : (w + 1) * per_wave if w < waves - 1 else None]
        eng.submit_all(chunk)
        results.append(eng.run())
        eng.cache.check_invariants()
    return eng, results


def assert_bit_identical(rv, re):
    """Vector vs scalar event: plain ``==`` on everything, clocks included."""
    assert rv.prompt_tokens == re.prompt_tokens
    assert rv.cached_tokens == re.cached_tokens
    assert rv.prefill_tokens == re.prefill_tokens
    assert rv.decode_tokens == re.decode_tokens
    assert rv.decode_steps == re.decode_steps
    assert rv.peak_kv_tokens == re.peak_kv_tokens
    assert rv.max_batch_seen == re.max_batch_seen
    assert rv.peak_kv_blocks == re.peak_kv_blocks
    assert rv.fragmentation_tokens == re.fragmentation_tokens
    assert rv.total_seconds == re.total_seconds
    assert len(rv.request_metrics) == len(re.request_metrics)
    for mv, me in zip(rv.request_metrics, re.request_metrics):
        assert mv.request_id == me.request_id
        assert mv.prompt_tokens == me.prompt_tokens
        assert mv.cached_tokens == me.cached_tokens
        assert mv.prefill_tokens == me.prefill_tokens
        assert mv.output_tokens == me.output_tokens
        assert mv.arrival_s == me.arrival_s
        assert mv.tenant == me.tenant
        assert mv.admitted_at_s == me.admitted_at_s
        assert mv.first_token_at_s == me.first_token_at_s
        assert mv.finished_at_s == me.finished_at_s


def assert_close(ra, rb, rel=1e-6):
    """Event vs stepwise: integers exact, clocks to float rounding."""
    assert ra.prompt_tokens == rb.prompt_tokens
    assert ra.cached_tokens == rb.cached_tokens
    assert ra.prefill_tokens == rb.prefill_tokens
    assert ra.decode_tokens == rb.decode_tokens
    assert ra.decode_steps == rb.decode_steps
    assert ra.peak_kv_tokens == rb.peak_kv_tokens
    assert ra.max_batch_seen == rb.max_batch_seen
    assert ra.total_seconds == pytest.approx(rb.total_seconds, rel=rel, abs=1e-9)
    for ma, mb in zip(ra.request_metrics, rb.request_metrics):
        assert ma.request_id == mb.request_id
        assert ma.cached_tokens == mb.cached_tokens
        assert ma.admitted_at_s == pytest.approx(mb.admitted_at_s, rel=rel, abs=1e-9)
        assert ma.first_token_at_s == pytest.approx(
            mb.first_token_at_s, rel=rel, abs=1e-9
        )
        assert ma.finished_at_s == pytest.approx(mb.finished_at_s, rel=rel, abs=1e-9)


def assert_vector_matches_event(requests, waves=1, **cfg_kwargs):
    cfg_kwargs.setdefault("kv_accounting", "tokens")
    e_vec, r_vec = run_engine(clone(requests), "vector", waves=waves, **cfg_kwargs)
    e_evt, r_evt = run_engine(clone(requests), "event", waves=waves, **cfg_kwargs)
    assert e_vec.mode == "vector" and e_evt.mode == "event"
    for rv, re in zip(r_vec, r_evt):
        assert_bit_identical(rv, re)
    assert e_vec.cache.hits == e_evt.cache.hits
    assert e_vec.cache.misses == e_evt.cache.misses
    assert e_vec.cache.evicted_tokens == e_evt.cache.evicted_tokens
    assert e_vec.cache.total_tokens == e_evt.cache.total_tokens
    return r_vec


class TestVectorVsEvent:
    """Bit-identical vector vs scalar event across the workload space."""

    @pytest.mark.parametrize("seed", range(8))
    def test_roomy_capacity(self, seed):
        rng = random.Random(seed)
        assert_vector_matches_event(random_workload(rng))

    @pytest.mark.parametrize("seed", range(6))
    def test_memory_pressure(self, seed):
        """Tight KV capacity: eviction churn, blocked admissions, and the
        partial-release paths the skip-settle finish must mirror."""
        rng = random.Random(1000 + seed)
        reqs = random_workload(rng, n_requests=30, max_len=40, max_out=8)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)
        assert_vector_matches_event(
            reqs, kv_capacity_tokens=need + slack, max_batch_size=8
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_paged_accounting(self, seed):
        """Block-granular admission: bundle forks, straddle-shared split
        blocks, and block-denominated eviction."""
        rng = random.Random(2000 + seed)
        reqs = random_workload(rng, n_requests=30)
        assert_vector_matches_event(
            reqs, kv_accounting="paged", block_tokens=16
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_paged_eviction_pressure(self, seed):
        rng = random.Random(3000 + seed)
        reqs = random_workload(rng, n_requests=30, max_len=40, max_out=8)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)
        assert_vector_matches_event(
            reqs,
            kv_accounting="paged",
            block_tokens=8,
            kv_capacity_tokens=need + slack,
            max_batch_size=8,
        )

    @pytest.mark.parametrize(
        "policy", ["fcfs", "sjf", "prefix-affinity", "fair-share"]
    )
    @pytest.mark.parametrize("seed", range(2))
    def test_online_arrivals_all_policies(self, policy, seed):
        """Timed arrivals through every admission policy."""
        rng = random.Random(4000 + seed)
        reqs = random_workload(rng, n_requests=30, max_out=10)
        t = 0.0
        for r in reqs:
            t += rng.expovariate(30.0)
            r.arrival_s = t
        assert_vector_matches_event(reqs, scheduler=policy, max_batch_size=4)

    @pytest.mark.parametrize("seed", range(3))
    def test_multi_wave(self, seed):
        """Warm prefix cache across runs of one long-lived engine."""
        rng = random.Random(5000 + seed)
        assert_vector_matches_event(random_workload(rng, n_requests=45), waves=3)

    @pytest.mark.parametrize("seed", range(3))
    def test_tiny_batch(self, seed):
        rng = random.Random(6000 + seed)
        assert_vector_matches_event(
            random_workload(rng, n_requests=20), max_batch_size=2
        )

    def test_zero_output_only(self):
        reqs = [
            Request(i, tuple(range(10 * i, 10 * i + 5)), 0, tenant=f"t{i % 2}")
            for i in range(6)
        ]
        assert_vector_matches_event(reqs)

    def test_no_cache_baseline(self):
        rng = random.Random(7000)
        reqs = random_workload(rng, n_requests=25, max_out=6)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        assert_vector_matches_event(
            reqs,
            enable_prefix_cache=False,
            kv_capacity_tokens=3 * need,
            max_batch_size=16,
        )


class TestThreeWayChain:
    """vector == event (bit-identical) and event ~= stepwise (1e-6) on the
    same workload, closing the vector -> stepwise chain."""

    @pytest.mark.parametrize("seed", range(4))
    def test_chain_roomy(self, seed):
        rng = random.Random(8000 + seed)
        reqs = random_workload(rng)
        r_vec = assert_vector_matches_event(reqs)
        _, r_step = run_engine(clone(reqs), "stepwise", kv_accounting="tokens")
        for rv, rs in zip(r_vec, r_step):
            assert_close(rv, rs)

    @pytest.mark.parametrize("seed", range(3))
    def test_chain_memory_pressure(self, seed):
        rng = random.Random(9000 + seed)
        reqs = random_workload(rng, n_requests=30, max_len=40, max_out=8)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)
        cfg = dict(kv_capacity_tokens=need + slack, max_batch_size=8)
        r_vec = assert_vector_matches_event(reqs, **cfg)
        _, r_step = run_engine(
            clone(reqs), "stepwise", kv_accounting="tokens", **cfg
        )
        for rv, rs in zip(r_vec, r_step):
            assert_close(rv, rs)

    @pytest.mark.parametrize("seed", range(3))
    def test_chain_paged(self, seed):
        rng = random.Random(10_000 + seed)
        reqs = random_workload(rng, n_requests=25)
        cfg = dict(kv_accounting="paged", block_tokens=16)
        r_vec = assert_vector_matches_event(reqs, **cfg)
        _, r_step = run_engine(clone(reqs), "stepwise", **cfg)
        for rv, rs in zip(r_vec, r_step):
            assert_close(rv, rs)
