"""Tests for the batch inference server facade."""

import pytest

from repro.errors import ServingError
from repro.llm.server import BatchInferenceServer


def prompts(tag, n=5):
    return [f"shared preamble for every request {tag} row {i}" for i in range(n)]


class TestJobs:
    def test_submit_and_stats(self):
        server = BatchInferenceServer()
        res = server.submit_job("job-1", ["hello world"] * 4, output_lens=[2] * 4)
        assert len(res.outputs) == 4
        j = server.job("job-1")
        assert j.n_requests == 4
        assert j.prompt_tokens > 0
        assert j.seconds > 0
        # Four identical prompts: one distinct — the dedup headroom an
        # LLM-aware SQL layer would exploit.
        assert j.n_distinct_prompts == 1
        assert server.job("job-1").n_distinct_prompts == 1

    def test_distinct_prompts_counted_and_reported(self):
        server = BatchInferenceServer()
        server.submit_job("d", prompts("x"), output_lens=[1] * 5)
        assert server.job("d").n_distinct_prompts == 5
        assert "distinct" in server.report()

    def test_cache_persists_across_jobs(self):
        server = BatchInferenceServer()
        server.submit_job("warm", prompts("x"), output_lens=[1] * 5)
        server.submit_job("reuse", prompts("x"), output_lens=[1] * 5)
        assert server.job("reuse").hit_rate > server.job("warm").hit_rate

    def test_fresh_cache_isolates(self):
        server = BatchInferenceServer()
        server.submit_job("warm", prompts("x"), output_lens=[1] * 5)
        server.submit_job("cold", prompts("x"), output_lens=[1] * 5, fresh_cache=True)
        assert server.job("cold").hit_rate <= server.job("warm").hit_rate + 0.5

    def test_duplicate_job_id_rejected(self):
        server = BatchInferenceServer()
        server.submit_job("a", ["p"], output_lens=[1])
        with pytest.raises(ServingError):
            server.submit_job("a", ["p"], output_lens=[1])

    def test_failed_job_id_can_be_retried(self):
        """Regression: a job that dies with CapacityError used to leave its
        id registered, so the fixed-up retry hit "duplicate job id"."""
        from repro.errors import CapacityError
        from repro.llm.engine import EngineConfig

        server = BatchInferenceServer(
            engine_config=EngineConfig(kv_capacity_tokens=64, block_tokens=16)
        )
        huge = " ".join(f"tok{i}" for i in range(500))
        with pytest.raises(CapacityError):
            server.submit_job("etl", [huge], output_lens=[1])
        # The failed attempt must not burn the id or record stats.
        assert server.stats.jobs == []
        res = server.submit_job("etl", ["small prompt"], output_lens=[1])
        assert len(res.outputs) == 1
        assert server.job("etl").n_requests == 1

    def test_report_includes_paged_columns(self):
        from repro.llm.engine import EngineConfig

        server = BatchInferenceServer(
            engine_config=EngineConfig(kv_accounting="paged")
        )
        server.submit_job("a", prompts("x"), output_lens=[1] * 5)
        report = server.report()
        assert "kv_blocks" in report and "frag_tok" in report
        job = server.job("a")
        assert job.peak_kv_blocks > 0
        assert job.block_tokens == 16
        assert 0.0 <= job.fragmentation < 1.0

    def test_empty_job_rejected(self):
        server = BatchInferenceServer()
        with pytest.raises(ServingError):
            server.submit_job("empty", [])

    def test_unknown_job(self):
        server = BatchInferenceServer()
        with pytest.raises(ServingError):
            server.job("ghost")

    def test_lifetime_rollup_and_report(self):
        server = BatchInferenceServer()
        server.submit_job("a", prompts("x"), output_lens=[1] * 5)
        server.submit_job("b", prompts("x"), output_lens=[1] * 5)
        assert 0.0 <= server.stats.lifetime_hit_rate <= 1.0
        assert server.stats.total_seconds > 0
        report = server.report()
        assert "lifetime hit rate" in report
        assert "a" in report and "b" in report

    def test_outputs_passed_through(self):
        server = BatchInferenceServer()
        res = server.submit_job("o", ["p1", "p2"], outputs=["yes", "no"])
        assert res.outputs == ["yes", "no"]


class TestTraceJobs:
    def trace(self, n=8, tag="t", stagger=0.02):
        from repro.llm.workload import TraceRequest, WorkloadTrace

        return WorkloadTrace(
            [
                TraceRequest(
                    i * stagger,
                    f"shared preamble for every request {tag} row {i % 4}",
                    tenant=f"tenant-{i % 2}",
                    output_len=2,
                )
                for i in range(n)
            ],
            name=f"trace-{tag}",
        )

    def test_submit_trace_records_slo(self):
        server = BatchInferenceServer()
        res = server.submit_trace("nightly", self.trace(), deadline_s=60.0)
        job = server.job("nightly")
        assert job.n_requests == 8
        assert job.scheduler == "fcfs"
        assert job.slo is not None
        assert job.slo.n_requests == 8
        assert job.p95_ttft_s == job.slo.ttft.p95 > 0.0
        assert job.slo_attainment == 1.0
        assert set(job.slo.per_tenant) == {"tenant-0", "tenant-1"}
        assert res.slo.ttft.p95 == job.p95_ttft_s

    def test_trace_job_report_columns(self):
        server = BatchInferenceServer()
        server.submit_trace("trjob", self.trace(tag="r"))
        report = server.report()
        assert "sched" in report and "p95_ttft" in report
        assert "fcfs" in report

    def test_slo_report_renders_tenants(self):
        server = BatchInferenceServer()
        server.submit_trace("slojob", self.trace(tag="s"))
        text = server.slo_report("slojob")
        assert "slojob" in text
        assert "tenant-0" in text and "tenant-1" in text and "(all)" in text

    def test_batch_jobs_also_get_slo(self):
        server = BatchInferenceServer()
        server.submit_job("plain", prompts("p"), output_lens=[1] * 5)
        job = server.job("plain")
        assert job.slo is not None and job.slo.n_requests == 5
        assert "plain" in server.slo_report("plain")

    def test_duplicate_trace_job_rejected(self):
        server = BatchInferenceServer()
        server.submit_trace("dup", self.trace())
        with pytest.raises(ServingError):
            server.submit_trace("dup", self.trace())

    def test_empty_trace_rejected(self):
        from repro.llm.workload import WorkloadTrace

        server = BatchInferenceServer()
        with pytest.raises(ServingError):
            server.submit_trace("empty", WorkloadTrace([]))

    def test_trace_with_scheduler_policy(self):
        from repro.llm.engine import EngineConfig
        from repro.llm.scheduler import serving_online_enabled

        server = BatchInferenceServer(
            engine_config=EngineConfig(scheduler="prefix-affinity")
        )
        server.submit_trace("affine", self.trace(tag="a"))
        expected = "prefix-affinity" if serving_online_enabled() else "fcfs"
        assert server.job("affine").scheduler == expected

    def test_preemption_stats_recorded_and_reported(self):
        from repro.llm.engine import EngineConfig
        from repro.llm.scheduler import (
            serving_online_enabled,
            serving_preempt_enabled,
        )
        from repro.llm.workload import TraceRequest, WorkloadTrace

        # Two decode slots, one long-decode hog in front of urgent short
        # requests: the EDF policy must evict it, so n_preemptions > 0.
        server = BatchInferenceServer(
            engine_config=EngineConfig(
                scheduler="deadline",
                preemption="recompute",
                scheduler_deadline_s=2.0,
                max_batch_size=2,
            )
        )
        reqs = [
            TraceRequest(0.0, "long running batch report", output_len=120,
                         deadline_s=60.0),
            TraceRequest(0.0, "second batch report body", output_len=120,
                         deadline_s=60.0),
        ] + [
            TraceRequest(0.3 + 0.01 * i, f"urgent ask {i}", output_len=2,
                         deadline_s=1.0)
            for i in range(6)
        ]
        server.submit_trace("pre", WorkloadTrace(reqs, name="pre"))
        job = server.job("pre")
        if serving_online_enabled() and serving_preempt_enabled():
            assert job.preemption == "recompute"
            assert job.n_preemptions > 0
            assert job.preempted_tokens_recomputed > 0
            assert job.preempted_tokens_swapped == 0
        else:
            assert job.n_preemptions == 0
        report = server.report()
        assert "npre" in report

    def test_jobs_without_preemption_report_zero(self):
        server = BatchInferenceServer()
        server.submit_trace("calm", self.trace(tag="c"))
        job = server.job("calm")
        assert job.preemption == "off"
        assert job.n_preemptions == 0
        assert job.n_prefill_chunks == 0


class TestClusterJobs:
    @pytest.fixture(autouse=True)
    def _cluster_layer_on(self, monkeypatch):
        """These tests exercise the multi-replica layer directly, so pin
        the gate open even in the ``REPRO_SERVING_CLUSTER=0`` CI run."""
        monkeypatch.delenv("REPRO_SERVING_CLUSTER", raising=False)

    def trace(self, n=16, tag="c"):
        from repro.llm.workload import TraceRequest, WorkloadTrace

        return WorkloadTrace(
            [
                TraceRequest(
                    i * 0.01,
                    f"cluster tenant {i % 3} shared header {tag} row {i}",
                    tenant=f"tenant-{i % 3}",
                    output_len=2,
                )
                for i in range(n)
            ],
            name=f"cluster-{tag}",
        )

    def test_submit_cluster_trace_records_stats(self):
        from repro.llm.cluster import ClusterConfig

        server = BatchInferenceServer()
        res = server.submit_cluster_trace(
            "fleet",
            self.trace(),
            cluster_config=ClusterConfig(n_replicas=2, routing="least-queue"),
            deadline_s=60.0,
        )
        assert res.n_replicas == 2
        job = server.job("fleet")
        assert job.n_requests == 16
        assert job.prompt_tokens == res.prompt_tokens
        assert job.scheduler == "least-queue@2r"
        assert job.slo is not None and job.slo.n_requests == 16
        assert "fleet" in server.report()
        assert "least-queue@2r" in server.report()

    def test_cluster_job_duplicate_rejected(self):
        server = BatchInferenceServer()
        server.submit_cluster_trace("dup-fleet", self.trace())
        with pytest.raises(ServingError):
            server.submit_cluster_trace("dup-fleet", self.trace())

    def test_cluster_job_does_not_touch_single_engine_cache(self):
        server = BatchInferenceServer()
        server.submit_trace("warm", self.trace(tag="w"))
        hits_before = server.client.engine.cache.hits
        server.submit_cluster_trace("fleet2", self.trace(tag="f"))
        assert server.client.engine.cache.hits == hits_before

    def test_empty_cluster_trace_rejected(self):
        from repro.llm.workload import WorkloadTrace

        server = BatchInferenceServer()
        with pytest.raises(ServingError):
            server.submit_cluster_trace("nope", WorkloadTrace([]))


class TestEncodeCacheTelemetry:
    """Satellite: the PR 6 encode cache is observable in the server report."""

    def test_report_renders_encode_cache_line(self):
        server = BatchInferenceServer()
        server.submit_job("ec", ["same prompt"] * 4, output_lens=[1] * 4)
        report = server.report()
        assert "encode cache:" in report
        assert "hits" in report and "misses" in report and "entries" in report

    def test_counts_reflect_reuse(self):
        server = BatchInferenceServer()
        server.submit_job("ec1", ["alpha", "beta", "alpha"], output_lens=[1] * 3)
        stats = server.client.encode_cache_stats()
        assert stats["misses"] >= 2  # alpha, beta cold
        assert stats["hits"] >= 1  # second alpha
        ec_line, radix_line = server.report().splitlines()[-2:]
        assert ec_line.startswith("encode cache:")
        assert f"{stats['hits']} hits" in ec_line
        rx = server.client.radix_stats()
        assert radix_line.startswith(f"radix cache: backend={rx['backend']}")
        assert f"{rx['nodes']} nodes" in radix_line
