"""Unit coverage of the cluster layer: routing policies, config
validation, result accounting, and the ``REPRO_SERVING_CLUSTER`` gate.
The randomized oracle comparisons live in ``test_cluster_equivalence.py``.
"""

import random

import pytest

from repro.errors import ReproError, ServingError
from repro.llm.cluster import (
    CLUSTER_BACKENDS,
    ROUTING_POLICIES,
    ClusterConfig,
    ClusterEngine,
    PrefixAwareRouter,
    RoundRobinRouter,
    TenantShardedRouter,
    make_router,
    serving_cluster_enabled,
)
from repro.llm.costmodel import CostModel
from repro.llm.engine import EngineConfig
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.request import Request
from repro.llm.workload import TraceRequest, WorkloadTrace


@pytest.fixture(autouse=True)
def _cluster_layer_on(monkeypatch):
    """These tests exercise the cluster layer's internals, so pin the
    gate open even in the ``REPRO_SERVING_CLUSTER=0`` CI run (the gate
    tests below re-set the variable themselves)."""
    monkeypatch.delenv("REPRO_SERVING_CLUSTER", raising=False)


def _cost():
    return CostModel(model=LLAMA3_8B, cluster=CLUSTER_1XL4)


def _req(rid, tokens, out=4, arrival=0.0, tenant="default"):
    return Request(
        request_id=rid,
        prompt_tokens=tuple(tokens),
        output_tokens=out,
        arrival_s=arrival,
        tenant=tenant,
    )


def _trace(n=24, n_tenants=3, header_words=40, seed=0):
    rng = random.Random(seed)
    tenants = [f"t{i}" for i in range(n_tenants)]
    headers = {
        t: " ".join(f"{t}h{j}" for j in range(header_words)) for t in tenants
    }
    t = 0.0
    reqs = []
    for i in range(n):
        tenant = rng.choice(tenants)
        t += rng.expovariate(50.0)
        reqs.append(
            TraceRequest(
                arrival_s=t,
                prompt=f"{headers[tenant]} row {i}",
                tenant=tenant,
                output_len=3,
            )
        )
    return WorkloadTrace(reqs, name="unit-trace")


class TestClusterConfig:
    def test_defaults_valid(self):
        cfg = ClusterConfig()
        assert cfg.n_replicas == 1
        assert cfg.routing in ROUTING_POLICIES
        assert cfg.backend in CLUSTER_BACKENDS

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_replicas=0),
            dict(n_replicas=-2),
            dict(routing="random"),
            dict(backend="thread"),
            dict(digest_block=0),
            dict(sketch_entries=0),
            dict(vnodes=0),
            dict(n_replicas=2, pins={"a": 2}),
            dict(n_replicas=2, pins={"a": -1}),
        ],
    )
    def test_invalid_rejected_at_construction(self, kwargs):
        with pytest.raises(ReproError):
            ClusterConfig(**kwargs)

    def test_unknown_routing_lists_choices(self):
        with pytest.raises(ServingError, match="round-robin"):
            ClusterConfig(routing="nope")

    def test_make_router_unknown_name(self):
        with pytest.raises(ServingError, match="choose from"):
            make_router("nope", 2, _cost())


class TestRoundRobin:
    def test_cycles_in_arrival_order(self):
        router = RoundRobinRouter(3, _cost())
        picks = [router.route(_req(i, [1, 2, 3])) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]


class TestLeastQueue:
    def test_prefers_empty_replica(self):
        router = make_router("least-queue", 2, _cost())
        # Two simultaneous long jobs land on different replicas.
        assert router.route(_req(0, range(50), out=50)) == 0
        assert router.route(_req(1, range(50), out=50)) == 1

    def test_outstanding_work_retires_over_time(self):
        router = make_router("least-queue", 2, _cost())
        router.route(_req(0, range(200), out=200, arrival=0.0))
        # Long after the estimated completion, replica 0 is idle again and
        # wins the index tiebreak.
        assert router.route(_req(1, range(5), arrival=1e6)) == 0

    def test_tiebreak_by_queued_tokens(self):
        router = make_router("least-queue", 2, _cost())
        router.route(_req(0, range(100), out=10))  # replica 0: deep
        router.route(_req(1, range(5), out=1))  # replica 1: shallow
        # Depths now equal (1 each); fewer queued tokens wins.
        assert router.route(_req(2, range(5))) == 1


class TestPrefixAware:
    def test_repeated_prefix_sticks_to_one_replica(self):
        router = PrefixAwareRouter(4, _cost(), digest_block=4)
        shared = list(range(32))
        first = router.route(_req(0, shared + [100]))
        for i in range(1, 6):
            assert router.route(_req(i, shared + [100 + i])) == first

    def test_distinct_prefixes_spread(self):
        router = PrefixAwareRouter(4, _cost(), digest_block=4)
        picks = set()
        for i in range(4):
            head = [1000 * (i + 1) + j for j in range(32)]
            picks.add(router.route(_req(i, head)))
        # Cold prompts fall back to least queued tokens: all four distinct
        # working sets land on distinct replicas.
        assert picks == {0, 1, 2, 3}

    def test_cold_prompt_falls_back_to_least_queued(self):
        router = PrefixAwareRouter(2, _cost(), digest_block=16)
        assert router.route(_req(0, range(15))) == 0

    def test_short_prompt_matches_exactly(self):
        # The digest sketch was blind below one block; the shadow radix
        # tree matches per token, so even a short repeated prompt sticks.
        router = PrefixAwareRouter(2, _cost(), digest_block=16)
        first = router.route(_req(0, range(15)))
        assert router.route(_req(1, range(15))) == first

    def test_shadow_tree_is_token_bounded(self):
        router = PrefixAwareRouter(1, _cost(), digest_block=1, sketch_entries=8)
        router.route(_req(0, range(100)))
        assert router.shadow_tokens == 8
        assert router._shadows[0].total_tokens <= 8


class TestTenantSharded:
    def test_same_tenant_same_replica(self):
        router = TenantShardedRouter(4, _cost())
        picks = {router.route(_req(i, [i], tenant="acme")) for i in range(5)}
        assert len(picks) == 1

    def test_ring_stable_across_instances(self):
        a = TenantShardedRouter(4, _cost())
        b = TenantShardedRouter(4, _cost())
        tenants = [f"tenant-{i}" for i in range(20)]
        assert [a.shard_of(t) for t in tenants] == [
            b.shard_of(t) for t in tenants
        ]

    def test_pins_override_ring(self):
        router = TenantShardedRouter(4, _cost(), pins={"vip": 3})
        assert router.route(_req(0, [1], tenant="vip")) == 3

    def test_pin_out_of_range(self):
        with pytest.raises(ServingError):
            TenantShardedRouter(2, _cost(), pins={"vip": 2})

    def test_ring_spreads_many_tenants(self):
        router = TenantShardedRouter(4, _cost(), vnodes=64)
        shards = {router.shard_of(f"tenant-{i}") for i in range(200)}
        assert shards == {0, 1, 2, 3}


class TestClusterEngine:
    def test_empty_trace_rejected(self):
        eng = ClusterEngine(ClusterConfig())
        with pytest.raises(ServingError):
            eng.run_trace(WorkloadTrace([], name="empty"))

    def test_result_accounting_consistent(self):
        trace = _trace()
        eng = ClusterEngine(
            ClusterConfig(
                n_replicas=3,
                routing="least-queue",
                engine=EngineConfig(max_batch_size=4),
            )
        )
        res = eng.run_trace(trace, deadline_s=5.0)
        assert res.n_replicas == 3
        assert len(res.replicas) == 3
        assert len(res.engine_results) == 3
        assert len(res.request_metrics) == trace.n_requests
        # Metrics are merged in request-id (= trace) order.
        assert [m.request_id for m in res.request_metrics] == list(
            range(trace.n_requests)
        )
        assert sum(s.n_requests for s in res.replicas) == trace.n_requests
        assert res.prompt_tokens == sum(s.prompt_tokens for s in res.replicas)
        assert res.cached_tokens == sum(s.cached_tokens for s in res.replicas)
        assert res.total_seconds == max(s.total_seconds for s in res.replicas)
        assert 0.0 <= res.prefix_hit_rate <= 1.0
        assert res.load_skew >= 0.0
        assert res.slo.n_requests == trace.n_requests
        assert res.goodput_attainment == res.slo.attainment

    def test_route_trace_matches_run(self):
        trace = _trace(seed=3)
        cfg = ClusterConfig(n_replicas=3, routing="tenant-sharded")
        assignment = ClusterEngine(cfg).route_trace(trace)
        res = ClusterEngine(cfg).run_trace(trace)
        counts = [assignment.count(r) for r in range(3)]
        assert counts == [s.n_requests for s in res.replicas]

    def test_run_is_repeatable(self):
        trace = _trace(seed=5)
        eng = ClusterEngine(ClusterConfig(n_replicas=2, routing="prefix-aware"))
        a = eng.run_trace(trace)
        b = eng.run_trace(trace)
        assert a.request_metrics == b.request_metrics
        assert a.total_seconds == b.total_seconds

    def test_single_replica_skew_zero(self):
        res = ClusterEngine(ClusterConfig()).run_trace(_trace())
        assert res.load_skew == 0.0
        assert res.n_replicas == 1

    def test_render_replicas(self):
        res = ClusterEngine(
            ClusterConfig(n_replicas=2, routing="round-robin")
        ).run_trace(_trace())
        text = res.render_replicas()
        assert "replica" in text
        assert "load skew" in text
        assert text.count("\n") >= 3

    def test_slo_report_redeadline(self):
        res = ClusterEngine(ClusterConfig(n_replicas=2)).run_trace(
            _trace(), deadline_s=1e9
        )
        assert res.slo.attainment == 1.0
        tight = res.slo_report(1e-9)
        assert tight.attainment < 1.0


class TestClusterGate:
    def test_gate_forces_single_replica(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_CLUSTER", "0")
        assert not serving_cluster_enabled()
        eng = ClusterEngine(
            ClusterConfig(n_replicas=4, routing="prefix-aware", backend="spawn")
        )
        assert eng.n_replicas == 1
        assert eng.routing == "round-robin"
        assert eng.backend == "inline"
        res = eng.run_trace(_trace())
        assert res.n_replicas == 1
        assert len(res.replicas) == 1

    def test_gate_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_CLUSTER", raising=False)
        assert serving_cluster_enabled()
