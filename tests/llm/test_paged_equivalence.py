"""Randomized equivalence: paged-KV block admission vs the token-sum oracle.

With ``block_tokens=1`` a block *is* a token — no rounding, no partial
blocks, no straddles — so the paged admission path must reproduce the
token-sum oracle's request schedules exactly (identical integer metrics
and per-request clocks to float rounding) in *both* replay modes. With
realistic block sizes (16), the paged path must surface what the oracle
cannot see: internal fragmentation and block-granular sharing.

Block-manager and radix invariants (per-node allocations, refcount
conservation, no leaked or doubly-owned blocks) are checked after every
run, plus the engine-level drain invariants (no outstanding reservation,
no private tokens).
"""

import random

import pytest

from repro.errors import ServingError
from repro.llm.blocks import paged_accounting_enabled
from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.request import Request

from tests.llm.test_engine_equivalence import random_workload


def run_accounting(requests, kv_accounting, mode, block_tokens=1, waves=1, **cfg):
    eng = SimulatedLLMEngine(
        LLAMA3_8B,
        CLUSTER_1XL4,
        EngineConfig(
            mode=mode,
            kv_accounting=kv_accounting,
            block_tokens=block_tokens,
            **cfg,
        ),
    )
    results = []
    per_wave = max(1, len(requests) // waves)
    for w in range(waves):
        chunk = requests[w * per_wave : (w + 1) * per_wave if w < waves - 1 else None]
        eng.submit_all(chunk)
        results.append(eng.run())
        eng.cache.check_invariants()  # includes BlockManager invariants
        assert eng._reserved_blocks == 0
        assert eng._private_tokens == 0
    return eng, results


def fresh(requests):
    """Rebuild Request objects so each engine sees untouched instances."""
    return [
        Request(
            r.request_id, r.prompt_tokens, r.output_tokens,
            prompt_bytes=r.prompt_bytes,
        )
        for r in requests
    ]


def assert_paged_matches_tokens(requests, mode, waves=1, **cfg):
    """block_tokens=1 neutralizes every block effect: schedules, clocks and
    cache counters must match the token-sum oracle exactly."""
    e_tok, r_tok = run_accounting(fresh(requests), "tokens", mode, waves=waves, **cfg)
    e_pag, r_pag = run_accounting(
        fresh(requests), "paged", mode, block_tokens=1, waves=waves, **cfg
    )
    assert e_tok.blocks is None and e_pag.blocks is not None

    for rt, rp in zip(r_tok, r_pag):
        assert rp.prompt_tokens == rt.prompt_tokens
        assert rp.cached_tokens == rt.cached_tokens
        assert rp.prefill_tokens == rt.prefill_tokens
        assert rp.decode_tokens == rt.decode_tokens
        assert rp.decode_steps == rt.decode_steps
        assert rp.peak_kv_tokens == rt.peak_kv_tokens
        assert rp.max_batch_seen == rt.max_batch_seen
        assert rp.total_seconds == pytest.approx(
            rt.total_seconds, rel=1e-6, abs=1e-9
        )
        # One-token blocks: block charge == token charge, zero waste.
        assert rp.peak_kv_blocks == rt.peak_kv_tokens
        assert rp.fragmentation_tokens == 0
        assert rp.fragmentation == 0.0
        assert len(rp.request_metrics) == len(rt.request_metrics)
        for mt, mp in zip(rt.request_metrics, rp.request_metrics):
            assert mp.request_id == mt.request_id
            assert mp.prompt_tokens == mt.prompt_tokens
            assert mp.cached_tokens == mt.cached_tokens
            assert mp.prefill_tokens == mt.prefill_tokens
            assert mp.output_tokens == mt.output_tokens
            assert mp.admitted_at_s == pytest.approx(
                mt.admitted_at_s, rel=1e-6, abs=1e-9
            )
            assert mp.first_token_at_s == pytest.approx(
                mt.first_token_at_s, rel=1e-6, abs=1e-9
            )
            assert mp.finished_at_s == pytest.approx(
                mt.finished_at_s, rel=1e-6, abs=1e-9
            )

    # Identical probe/evict sequences against the radix cache.
    assert e_pag.cache.hits == e_tok.cache.hits
    assert e_pag.cache.misses == e_tok.cache.misses
    assert e_pag.cache.evicted_tokens == e_tok.cache.evicted_tokens
    assert e_pag.cache.total_tokens == e_tok.cache.total_tokens


class TestPagedMatchesTokenOracle:
    @pytest.mark.parametrize("mode", ["event", "stepwise"])
    @pytest.mark.parametrize("seed", range(6))
    def test_roomy_capacity(self, mode, seed):
        rng = random.Random(seed)
        assert_paged_matches_tokens(random_workload(rng), mode)

    @pytest.mark.parametrize("mode", ["event", "stepwise"])
    @pytest.mark.parametrize("seed", range(6))
    def test_memory_pressure(self, mode, seed):
        """Tight capacity: eviction and blocked admission decisions must
        coincide too (at block_tokens=1 the free-pool arithmetic is
        numerically identical)."""
        rng = random.Random(5000 + seed)
        reqs = random_workload(rng, n_requests=30, max_len=40, max_out=8)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)
        assert_paged_matches_tokens(
            reqs, mode, kv_capacity_tokens=need + slack, max_batch_size=8
        )

    @pytest.mark.parametrize("mode", ["event", "stepwise"])
    @pytest.mark.parametrize("seed", range(3))
    def test_no_cache_baseline(self, mode, seed):
        rng = random.Random(6000 + seed)
        reqs = random_workload(rng, n_requests=25, max_out=6)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        assert_paged_matches_tokens(
            reqs,
            mode,
            enable_prefix_cache=False,
            kv_capacity_tokens=3 * need,
            max_batch_size=16,
        )

    @pytest.mark.parametrize("mode", ["event", "stepwise"])
    @pytest.mark.parametrize("seed", range(3))
    def test_persistent_cache_across_runs(self, mode, seed):
        rng = random.Random(7000 + seed)
        assert_paged_matches_tokens(
            random_workload(rng, n_requests=45), mode, waves=3
        )


def assert_modes_agree(requests, block_tokens, **cfg):
    """Event vs stepwise replay must agree under paged accounting at any
    block size (same admission authority, same schedules)."""
    e_s, r_s = run_accounting(
        fresh(requests), "paged", "stepwise", block_tokens=block_tokens, **cfg
    )
    e_e, r_e = run_accounting(
        fresh(requests), "paged", "event", block_tokens=block_tokens, **cfg
    )
    for rs, re in zip(r_s, r_e):
        assert re.cached_tokens == rs.cached_tokens
        assert re.decode_steps == rs.decode_steps
        assert re.peak_kv_tokens == rs.peak_kv_tokens
        assert re.peak_kv_blocks == rs.peak_kv_blocks
        assert re.fragmentation_tokens == rs.fragmentation_tokens
        assert re.max_batch_seen == rs.max_batch_seen
        assert re.total_seconds == pytest.approx(
            rs.total_seconds, rel=1e-6, abs=1e-9
        )
    assert e_e.cache.evicted_tokens == e_s.cache.evicted_tokens


class TestPagedBlockGranularity:
    @pytest.mark.parametrize("seed", range(4))
    def test_modes_agree_at_block_16(self, seed):
        rng = random.Random(8000 + seed)
        assert_modes_agree(random_workload(rng), block_tokens=16)

    @pytest.mark.parametrize("seed", range(4))
    def test_modes_agree_under_pressure(self, seed):
        rng = random.Random(9000 + seed)
        reqs = random_workload(rng, n_requests=30, max_len=40, max_out=8)
        # Feasible by blocks: every request's suffix + decode tail fits
        # alone with headroom for protected partially-matched edges and
        # straddle-shared blocks that eviction cannot reclaim.
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        assert_modes_agree(
            reqs, block_tokens=16, kv_capacity_tokens=4 * need, max_batch_size=8
        )

    def test_fragmentation_visible_at_block_16(self):
        """Odd-length prompts leave partially-filled last blocks: the paged
        path must report them, the oracle reports none."""
        reqs = [
            Request(i, tuple(range(1000 * i, 1000 * i + 37)), 5)
            for i in range(8)
        ]
        _, (res,) = run_accounting(fresh(reqs), "paged", "event", block_tokens=16)
        assert res.kv_accounting == "paged"
        assert res.block_tokens == 16
        assert res.peak_kv_blocks > 0
        assert res.fragmentation_tokens > 0
        assert 0.0 < res.fragmentation < 1.0
        # Block charge always covers the tokens actually stored.
        assert res.peak_kv_blocks * 16 >= res.peak_kv_tokens

        _, (oracle,) = run_accounting(fresh(reqs), "tokens", "event")
        assert oracle.kv_accounting == "tokens"
        assert oracle.peak_kv_blocks == 0
        assert oracle.fragmentation_tokens == 0
        assert oracle.fragmentation == 0.0

    def test_shared_prefix_blocks_counted_once(self):
        """N requests over one shared prompt: the shared blocks are charged
        once (fork refs), not N times."""
        shared = tuple(range(160))  # exactly 10 blocks of 16
        reqs = [Request(i, shared, 1) for i in range(6)]
        _, (res,) = run_accounting(fresh(reqs), "paged", "event", block_tokens=16)
        # 10 shared prompt blocks + one decode-tail block per request.
        assert res.peak_kv_blocks == 10 + 6


class TestAccountingSelection:
    def test_default_is_paged(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_PAGED", raising=False)
        assert paged_accounting_enabled()
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        assert eng.kv_accounting == "paged"
        assert eng.blocks is not None
        assert eng.blocks.block_tokens == 16

    def test_env_flag_selects_token_oracle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_PAGED", "0")
        assert not paged_accounting_enabled()
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        assert eng.kv_accounting == "tokens"
        assert eng.blocks is None

    def test_explicit_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_PAGED", "0")
        eng = SimulatedLLMEngine(
            LLAMA3_8B, CLUSTER_1XL4, EngineConfig(kv_accounting="paged")
        )
        assert eng.kv_accounting == "paged"
        monkeypatch.delenv("REPRO_SERVING_PAGED")
        eng = SimulatedLLMEngine(
            LLAMA3_8B, CLUSTER_1XL4, EngineConfig(kv_accounting="tokens")
        )
        assert eng.kv_accounting == "tokens"

    def test_unknown_accounting_rejected(self):
        with pytest.raises(ServingError):
            SimulatedLLMEngine(
                LLAMA3_8B, CLUSTER_1XL4, EngineConfig(kv_accounting="bogus")
            )

    def test_bad_block_tokens_rejected(self):
        with pytest.raises(ServingError):
            SimulatedLLMEngine(
                LLAMA3_8B, CLUSTER_1XL4, EngineConfig(block_tokens=0)
            )

    def test_capacity_below_one_block_rejected(self):
        with pytest.raises(ServingError):
            SimulatedLLMEngine(
                LLAMA3_8B,
                CLUSTER_1XL4,
                EngineConfig(
                    kv_accounting="paged",
                    block_tokens=16,
                    kv_capacity_tokens=10,
                ),
            )
