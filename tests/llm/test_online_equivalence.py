"""Randomized equivalence: online serving vs the offline engine.

The contract: with every arrival at t=0 and the ``fcfs`` policy, the
online path (arrival heap -> policy pool -> policy-driven admission) must
reproduce the offline engine's schedules, integer metrics and cache
counters *exactly*, and its clocks to float rounding (1e-6 relative) — in
both replay modes (event and stepwise). ``REPRO_SERVING_ONLINE=0`` must
force that offline shape end to end even when a different policy and real
arrival stamps are configured.
"""

import random

import pytest

from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.radix import pack_tokens
from repro.llm.request import Request
from repro.llm.workload import TraceRequest, WorkloadTrace


def random_workload(rng, n_requests=40, vocab=50, max_len=60, max_out=12):
    """Requests with heavy prefix sharing, zero-output requests, tenant
    tags, and mixed packed/unpacked probes (as in the engine-equivalence
    suite)."""
    pool = [
        tuple(rng.randrange(vocab) for _ in range(rng.randrange(5, max_len)))
        for _ in range(5)
    ]
    reqs = []
    for i in range(n_requests):
        if rng.random() < 0.7:
            base = rng.choice(pool)
            base = base[: rng.randrange(1, len(base) + 1)]
        else:
            base = ()
        suffix = tuple(
            rng.randrange(vocab) for _ in range(rng.randrange(0, max_len))
        )
        toks = base + suffix or (rng.randrange(vocab),)
        out = 0 if rng.random() < 0.1 else rng.randrange(1, max_out)
        packed = pack_tokens(toks) if rng.random() < 0.5 else None
        reqs.append(
            Request(
                request_id=i,
                prompt_tokens=toks,
                output_tokens=out,
                prompt_bytes=packed,
                tenant=f"tenant-{i % 3}",
            )
        )
    return reqs


def run_engine(requests, mode, scheduler, waves=1, **cfg_kwargs):
    cfg_kwargs.setdefault("kv_accounting", "tokens")
    eng = SimulatedLLMEngine(
        LLAMA3_8B,
        CLUSTER_1XL4,
        EngineConfig(mode=mode, scheduler=scheduler, **cfg_kwargs),
    )
    results = []
    per_wave = max(1, len(requests) // waves)
    for w in range(waves):
        chunk = requests[w * per_wave : (w + 1) * per_wave if w < waves - 1 else None]
        eng.submit_all(chunk)
        results.append(eng.run())
        eng.cache.check_invariants()
    return eng, results


def assert_results_equal(r_off, r_on, rel=1e-6):
    assert r_on.prompt_tokens == r_off.prompt_tokens
    assert r_on.cached_tokens == r_off.cached_tokens
    assert r_on.prefill_tokens == r_off.prefill_tokens
    assert r_on.decode_tokens == r_off.decode_tokens
    assert r_on.decode_steps == r_off.decode_steps
    assert r_on.peak_kv_tokens == r_off.peak_kv_tokens
    assert r_on.max_batch_seen == r_off.max_batch_seen
    assert r_on.total_seconds == pytest.approx(
        r_off.total_seconds, rel=rel, abs=1e-9
    )
    assert len(r_on.request_metrics) == len(r_off.request_metrics)
    for mo, mn in zip(r_off.request_metrics, r_on.request_metrics):
        assert mn.request_id == mo.request_id
        assert mn.prompt_tokens == mo.prompt_tokens
        assert mn.cached_tokens == mo.cached_tokens
        assert mn.prefill_tokens == mo.prefill_tokens
        assert mn.output_tokens == mo.output_tokens
        for attr in ("admitted_at_s", "first_token_at_s", "finished_at_s"):
            assert getattr(mn, attr) == pytest.approx(
                getattr(mo, attr), rel=rel, abs=1e-9
            )


def assert_online_matches_offline(make_requests, mode, waves=1, **cfg_kwargs):
    """Offline oracle (plain FIFO batch) vs the online fcfs path at t=0."""
    e_off, r_off = run_engine(
        make_requests(), mode, scheduler="fcfs", waves=waves, **cfg_kwargs
    )
    e_on, r_on = run_engine(
        make_requests(), mode, scheduler="fcfs", waves=waves, **cfg_kwargs
    )
    for ro, rn in zip(r_off, r_on):
        assert_results_equal(ro, rn)
    assert e_on.cache.hits == e_off.cache.hits
    assert e_on.cache.misses == e_off.cache.misses
    assert e_on.cache.evicted_tokens == e_off.cache.evicted_tokens
    assert e_on.cache.total_tokens == e_off.cache.total_tokens


class TestOnlineEquivalence:
    """fcfs @ all-arrivals-at-t=0 == offline, via the client trace path
    (exercising request construction, the scheduler pool, and SLO stamps
    on top of the engine loops)."""

    @pytest.mark.parametrize("mode", ["event", "stepwise"])
    @pytest.mark.parametrize("seed", range(6))
    def test_trace_at_t0_matches_generate(self, mode, seed):
        rng = random.Random(seed)
        n = 30
        distinct = [
            "q%d shared header words %s tail %d"
            % (i % 5, "x" * rng.randrange(1, 30), rng.randrange(8))
            for i in range(12)
        ]
        prompts = [distinct[rng.randrange(len(distinct))] for _ in range(n)]
        out_lens = [rng.randrange(0, 6) for _ in range(n)]

        cfg = dict(mode=mode, kv_accounting="tokens", max_batch_size=8)
        c_off = SimulatedLLMClient(engine_config=EngineConfig(**cfg))
        r_off = c_off.generate(prompts, output_lens=out_lens)

        trace = WorkloadTrace(
            [
                TraceRequest(
                    0.0, p, tenant=f"t{i % 3}", output_len=out_lens[i]
                )
                for i, p in enumerate(prompts)
            ]
        )
        c_on = SimulatedLLMClient(
            engine_config=EngineConfig(scheduler="fcfs", **cfg)
        )
        r_on = c_on.generate_trace(trace)

        assert_results_equal(r_off.engine_result, r_on.engine_result)
        for attr in ("hits", "misses", "evicted_tokens", "total_tokens"):
            assert getattr(c_on.engine.cache, attr) == getattr(
                c_off.engine.cache, attr
            )
        # Arrivals at t=0: queueing delay == admission clock.
        for m in r_on.engine_result.request_metrics:
            assert m.arrival_s == 0.0
            assert m.queueing_delay_s == m.admitted_at_s

    @pytest.mark.parametrize("mode", ["event", "stepwise"])
    @pytest.mark.parametrize("seed", range(6))
    def test_engine_level_roomy(self, mode, seed):
        rng = random.Random(100 + seed)
        reqs = random_workload(rng)

        def make():
            return [
                Request(
                    r.request_id,
                    r.prompt_tokens,
                    r.output_tokens,
                    prompt_bytes=r.prompt_bytes,
                    tenant=r.tenant,
                )
                for r in reqs
            ]

        assert_online_matches_offline(make, mode)

    @pytest.mark.parametrize("mode", ["event", "stepwise"])
    @pytest.mark.parametrize("seed", range(4))
    def test_engine_level_memory_pressure(self, mode, seed):
        rng = random.Random(200 + seed)
        reqs = random_workload(rng, n_requests=30, max_len=40, max_out=8)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)

        def make():
            return [
                Request(
                    r.request_id,
                    r.prompt_tokens,
                    r.output_tokens,
                    prompt_bytes=r.prompt_bytes,
                    tenant=r.tenant,
                )
                for r in reqs
            ]

        assert_online_matches_offline(
            make, mode, kv_capacity_tokens=need + slack, max_batch_size=8
        )

    @pytest.mark.parametrize("mode", ["event", "stepwise"])
    @pytest.mark.parametrize("seed", range(3))
    def test_engine_level_multi_wave(self, mode, seed):
        rng = random.Random(300 + seed)
        reqs = random_workload(rng, n_requests=45)

        def make():
            return [
                Request(
                    r.request_id,
                    r.prompt_tokens,
                    r.output_tokens,
                    prompt_bytes=r.prompt_bytes,
                    tenant=r.tenant,
                )
                for r in reqs
            ]

        assert_online_matches_offline(make, mode, waves=3)


class TestPagedOnlineEquivalence:
    """The online path composes with paged-KV admission: fcfs @ t=0 still
    matches offline under block accounting, both modes."""

    @pytest.mark.parametrize("mode", ["event", "stepwise"])
    @pytest.mark.parametrize("seed", range(3))
    def test_paged_roomy(self, mode, seed):
        rng = random.Random(400 + seed)
        reqs = random_workload(rng, n_requests=30)

        def make():
            return [
                Request(
                    r.request_id,
                    r.prompt_tokens,
                    r.output_tokens,
                    prompt_bytes=r.prompt_bytes,
                    tenant=r.tenant,
                )
                for r in reqs
            ]

        assert_online_matches_offline(
            make, mode, kv_accounting="paged", block_tokens=16
        )


class TestOfflineGate:
    """REPRO_SERVING_ONLINE=0 selects the offline path end to end."""

    def _trace(self, n=20, seed=0):
        rng = random.Random(seed)
        return WorkloadTrace(
            [
                TraceRequest(
                    arrival_s=i * 0.05,
                    prompt="gate prompt %d %s" % (i % 7, "y" * rng.randrange(1, 20)),
                    tenant=f"t{i % 2}",
                    output_len=rng.randrange(1, 5),
                )
                for i in range(n)
            ]
        )

    def test_gate_forces_fcfs_and_t0(self, monkeypatch):
        trace = self._trace()
        prompts = [r.prompt for r in trace.requests]
        out_lens = [r.output_len for r in trace.requests]

        monkeypatch.setenv("REPRO_SERVING_ONLINE", "0")
        # Even an explicitly configured non-fcfs policy resolves to fcfs.
        c_gated = SimulatedLLMClient(
            engine_config=EngineConfig(scheduler="prefix-affinity")
        )
        assert c_gated.engine.scheduler_name == "fcfs"
        r_gated = c_gated.generate_trace(trace)
        assert r_gated.scheduler == "fcfs"

        monkeypatch.delenv("REPRO_SERVING_ONLINE")
        c_off = SimulatedLLMClient()
        r_off = c_off.generate(prompts, output_lens=out_lens)
        assert_results_equal(r_off.engine_result, r_gated.engine_result)

    def test_online_differs_from_gated(self, monkeypatch):
        """Sanity: with the gate open, timed arrivals actually change the
        clocks (otherwise the gate test proves nothing)."""
        monkeypatch.delenv("REPRO_SERVING_ONLINE", raising=False)
        trace = self._trace()
        online = SimulatedLLMClient().generate_trace(trace)
        offline = SimulatedLLMClient().generate_trace(trace.at_time_zero())
        assert online.engine_result.total_seconds > offline.engine_result.total_seconds
        last_arrival = trace.requests[-1].arrival_s
        assert online.engine_result.total_seconds >= last_arrival


class TestOnlineEventVsStepwise:
    """With real (timed) arrivals, the event loop's arrival-cut decode
    runs must land on the same step boundaries the stepwise loop walks:
    identical schedules and integer metrics, clocks to float rounding.
    Deterministic seeds (fixed workloads), all four policies."""

    @pytest.mark.parametrize("policy", ["fcfs", "sjf", "prefix-affinity", "fair-share"])
    @pytest.mark.parametrize("seed", range(3))
    def test_event_matches_stepwise(self, policy, seed):
        rng = random.Random(500 + seed)
        base = random_workload(rng, n_requests=30, max_out=10)
        arrivals = []
        t = 0.0
        for _ in base:
            t += rng.expovariate(30.0)
            arrivals.append(t)

        def make():
            return [
                Request(
                    r.request_id,
                    r.prompt_tokens,
                    r.output_tokens,
                    prompt_bytes=r.prompt_bytes,
                    arrival_s=arrivals[i],
                    tenant=r.tenant,
                )
                for i, r in enumerate(base)
            ]

        _, r_step = run_engine(
            make(), "stepwise", scheduler=policy, max_batch_size=4
        )
        _, r_evt = run_engine(
            make(), "event", scheduler=policy, max_batch_size=4
        )
        # Completion order can differ only through float boundaries; the
        # chosen seeds are verified deterministic.
        assert_results_equal(r_step[0], r_evt[0])
