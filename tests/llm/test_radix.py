"""Tests for the radix prefix cache, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.radix import RadixPrefixCache


class TestMatchInsert:
    def test_empty_cache_no_match(self):
        c = RadixPrefixCache()
        assert c.match([1, 2, 3]) == 0

    def test_exact_match_after_insert(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3])
        assert c.match([1, 2, 3]) == 3

    def test_prefix_match(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3, 4])
        assert c.match([1, 2, 9, 9]) == 2

    def test_longer_probe_matches_cached_part(self):
        c = RadixPrefixCache()
        c.insert([1, 2])
        assert c.match([1, 2, 3, 4]) == 2

    def test_insert_returns_new_token_count(self):
        c = RadixPrefixCache()
        assert c.insert([1, 2, 3]) == 3
        assert c.insert([1, 2, 3]) == 0
        assert c.insert([1, 2, 4]) == 1
        assert c.total_tokens == 4

    def test_split_preserves_subtree(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3, 4, 5])
        c.insert([1, 2, 9])
        assert c.match([1, 2, 3, 4, 5]) == 5
        assert c.match([1, 2, 9]) == 3
        c.check_invariants()

    def test_empty_sequence(self):
        c = RadixPrefixCache()
        assert c.insert([]) == 0
        assert c.match([]) == 0

    def test_hit_miss_counters(self):
        c = RadixPrefixCache()
        c.insert([1, 2])
        c.match([1, 2])
        c.match([7, 8])
        assert c.hits == 1 and c.misses == 1


class TestEviction:
    def test_evict_frees_tokens(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3])
        c.insert([9, 8, 7])
        freed = c.evict(3)
        assert freed >= 3
        assert c.total_tokens <= 3
        c.check_invariants()

    def test_evict_lru_order(self):
        c = RadixPrefixCache()
        c.insert([1, 1, 1])
        c.insert([2, 2, 2])
        c.match([1, 1, 1])  # refresh first path
        c.evict(3)
        assert c.match([1, 1, 1]) == 3
        assert c.match([2, 2, 2]) == 0

    def test_protected_paths_survive(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3])
        c.insert([9, 8, 7])
        c.insert([5, 5])
        freed = c.evict(100, protected=[[1, 2, 3]])
        assert c.match([1, 2, 3]) == 3
        assert freed == 5  # everything else went

    def test_evict_more_than_available(self):
        c = RadixPrefixCache()
        c.insert([1, 2])
        assert c.evict(100) == 2
        assert c.total_tokens == 0

    def test_interior_shared_prefix_outlives_leaf(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3, 4])
        c.insert([1, 2, 7, 8])
        # Evicting one leaf must keep the shared [1,2] interior intact.
        c.evict(2)
        assert c.match([1, 2]) == 2
        c.check_invariants()


class TestPathNodes:
    def test_path_ids_tolerant(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3])
        ids_full = c.path_node_ids([1, 2, 3])
        ids_divergent = c.path_node_ids([1, 2, 99])
        assert ids_divergent <= ids_full
        assert c.path_node_ids([42]) == set()


@st.composite
def token_seqs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    return [draw(st.integers(min_value=0, max_value=5)) for _ in range(n)]


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(token_seqs(), min_size=1, max_size=12))
    def test_insert_then_match_full(self, seqs):
        c = RadixPrefixCache()
        for s in seqs:
            c.insert(s)
            assert c.match(s) == len(s)
        c.check_invariants()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(token_seqs(), min_size=1, max_size=12))
    def test_total_tokens_equals_unique_prefix_mass(self, seqs):
        """total_tokens == number of distinct prefixes (trie nodes at token
        granularity), independent of insertion order."""
        c = RadixPrefixCache()
        for s in seqs:
            c.insert(s)
        prefixes = {tuple(s[:k]) for s in seqs for k in range(1, len(s) + 1)}
        assert c.total_tokens == len(prefixes)
        c.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(token_seqs(), min_size=2, max_size=10),
           st.integers(min_value=1, max_value=20))
    def test_eviction_preserves_invariants(self, seqs, n_evict):
        c = RadixPrefixCache()
        for s in seqs:
            c.insert(s)
        before = c.total_tokens
        freed = c.evict(n_evict)
        assert c.total_tokens == before - freed
        c.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(token_seqs(), min_size=1, max_size=10))
    def test_match_never_exceeds_probe(self, seqs):
        c = RadixPrefixCache()
        for s in seqs:
            c.insert(s)
        for s in seqs:
            assert 0 <= c.match(s[:3]) <= 3
