"""Tests for the radix prefix cache, including hypothesis invariants,
pin/unpin refcounting, and heap-vs-scan eviction equivalence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServingError
from repro.llm.radix import RadixPrefixCache, pack_tokens


class TestMatchInsert:
    def test_empty_cache_no_match(self):
        c = RadixPrefixCache()
        assert c.match([1, 2, 3]) == 0

    def test_exact_match_after_insert(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3])
        assert c.match([1, 2, 3]) == 3

    def test_prefix_match(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3, 4])
        assert c.match([1, 2, 9, 9]) == 2

    def test_longer_probe_matches_cached_part(self):
        c = RadixPrefixCache()
        c.insert([1, 2])
        assert c.match([1, 2, 3, 4]) == 2

    def test_insert_returns_new_token_count(self):
        c = RadixPrefixCache()
        assert c.insert([1, 2, 3]) == 3
        assert c.insert([1, 2, 3]) == 0
        assert c.insert([1, 2, 4]) == 1
        assert c.total_tokens == 4

    def test_split_preserves_subtree(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3, 4, 5])
        c.insert([1, 2, 9])
        assert c.match([1, 2, 3, 4, 5]) == 5
        assert c.match([1, 2, 9]) == 3
        c.check_invariants()

    def test_empty_sequence(self):
        c = RadixPrefixCache()
        assert c.insert([]) == 0
        assert c.match([]) == 0

    def test_hit_miss_counters(self):
        c = RadixPrefixCache()
        c.insert([1, 2])
        c.match([1, 2])
        c.match([7, 8])
        assert c.hits == 1 and c.misses == 1


class TestEviction:
    def test_evict_frees_tokens(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3])
        c.insert([9, 8, 7])
        freed = c.evict(3)
        assert freed >= 3
        assert c.total_tokens <= 3
        c.check_invariants()

    def test_evict_lru_order(self):
        c = RadixPrefixCache()
        c.insert([1, 1, 1])
        c.insert([2, 2, 2])
        c.match([1, 1, 1])  # refresh first path
        c.evict(3)
        assert c.match([1, 1, 1]) == 3
        assert c.match([2, 2, 2]) == 0

    def test_protected_paths_survive(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3])
        c.insert([9, 8, 7])
        c.insert([5, 5])
        freed = c.evict(100, protected=[[1, 2, 3]])
        assert c.match([1, 2, 3]) == 3
        assert freed == 5  # everything else went

    def test_evict_more_than_available(self):
        c = RadixPrefixCache()
        c.insert([1, 2])
        assert c.evict(100) == 2
        assert c.total_tokens == 0

    def test_interior_shared_prefix_outlives_leaf(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3, 4])
        c.insert([1, 2, 7, 8])
        # Evicting one leaf must keep the shared [1,2] interior intact.
        c.evict(2)
        assert c.match([1, 2]) == 2
        c.check_invariants()


class TestPathNodes:
    def test_path_ids_tolerant(self):
        c = RadixPrefixCache()
        c.insert([1, 2, 3])
        ids_full = c.path_node_ids([1, 2, 3])
        ids_divergent = c.path_node_ids([1, 2, 99])
        assert ids_divergent <= ids_full
        assert c.path_node_ids([42]) == set()


class TestPinning:
    def test_pin_protects_path(self):
        c = RadixPrefixCache(eviction="heap")
        c.insert([1, 2, 3])
        c.insert([9, 8, 7])
        ticket = c.pin([1, 2, 3])
        freed = c.evict(100)
        assert freed == 3
        assert c.match([1, 2, 3]) == 3
        c.check_invariants()
        c.unpin(ticket)
        c.check_invariants()
        assert c.evict(100) == 3

    def test_pin_miss_returns_none(self):
        c = RadixPrefixCache(eviction="heap")
        assert c.pin([1, 2]) is None
        c.unpin(None)  # no-op

    def test_unpin_without_pin_raises(self):
        c = RadixPrefixCache(eviction="heap")
        c.insert([1, 2])
        ticket = c.pin([1, 2])
        c.unpin(ticket)
        with pytest.raises(ServingError):
            c.unpin(ticket)

    def test_split_inherits_lock_refs(self):
        """A pinned path stays pinned after a later insert splits one of
        its edges — the split head inherits the tail's refcount."""
        c = RadixPrefixCache(eviction="heap")
        c.insert([1, 2, 3, 4, 5])
        ticket = c.pin([1, 2, 3, 4, 5])
        c.insert([1, 2, 9])  # splits [1..5] into [1,2] + [3,4,5]
        c.check_invariants()
        c.evict(100)
        assert c.match([1, 2, 3, 4, 5]) == 5  # pinned path survived
        assert c.match([1, 2, 9]) == 2  # divergent leaf was evictable
        c.unpin(ticket)
        c.check_invariants()
        assert c.evict(100) == 5

    def test_pin_partial_edge_protects_whole_node(self):
        c = RadixPrefixCache(eviction="heap")
        c.insert([1, 2, 3, 4])
        ticket = c.pin([1, 2])  # ends mid-edge: pins the [1,2,3,4] node
        assert c.evict(100) == 0
        c.unpin(ticket)
        assert c.evict(100) == 4
        c.check_invariants()

    def test_nested_pins(self):
        c = RadixPrefixCache(eviction="heap")
        c.insert([1, 2, 3])
        t1 = c.pin([1, 2, 3])
        t2 = c.pin([1, 2, 3])
        c.unpin(t1)
        assert c.evict(100) == 0  # still pinned by t2
        c.unpin(t2)
        assert c.evict(100) == 3
        c.check_invariants()

    def test_pin_unpin_cycles_do_not_grow_heap(self):
        """Regression: unpin used to push a fresh heap entry per cycle,
        leaking memory in a long-lived engine that never evicts."""
        c = RadixPrefixCache(eviction="heap")
        c.insert([1, 2, 3])
        for _ in range(1000):
            c.unpin(c.pin([1, 2, 3]))
            c.match([1, 2, 3])
        assert len(c._heap) <= 2
        c.check_invariants()

    def test_pins_respected_in_scan_mode_too(self):
        c = RadixPrefixCache(eviction="scan")
        c.insert([1, 2, 3])
        c.insert([9, 8])
        ticket = c.pin([1, 2, 3])
        assert c.evict(100) == 2
        assert c.match([1, 2, 3]) == 3
        c.unpin(ticket)
        c.check_invariants()


class TestHeapScanEquivalence:
    """Both eviction engines must make identical decisions on identical
    operation sequences — the scan implementation is the oracle."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_op_sequence(self, seed):
        rng = random.Random(seed)
        heap_c = RadixPrefixCache(eviction="heap")
        scan_c = RadixPrefixCache(eviction="scan")
        pool = [
            [rng.randrange(6) for _ in range(rng.randrange(1, 10))]
            for _ in range(12)
        ]
        pins = []  # parallel (heap_ticket, scan_ticket, seq)
        for _ in range(300):
            op = rng.random()
            seq = rng.choice(pool)
            # The packed-probe argument must never change results (the
            # scan cache ignores it entirely; the heap cache uses it for
            # long-edge compares).
            packed = pack_tokens(seq) if rng.random() < 0.5 else None
            if op < 0.35:
                assert heap_c.insert(seq, packed) == scan_c.insert(seq, packed)
            elif op < 0.6:
                assert heap_c.match(seq, packed) == scan_c.match(seq, packed)
            elif op < 0.75 and len(pins) < 4:
                th, ts = heap_c.pin(seq), scan_c.pin(seq)
                assert (th is None) == (ts is None)
                pins.append((th, ts))
            elif op < 0.85 and pins:
                th, ts = pins.pop(rng.randrange(len(pins)))
                heap_c.unpin(th)
                scan_c.unpin(ts)
            else:
                n = rng.randrange(1, 12)
                protected = [rng.choice(pool)] if rng.random() < 0.5 else []
                assert heap_c.evict(n, protected=protected) == scan_c.evict(
                    n, protected=protected
                )
            assert heap_c.total_tokens == scan_c.total_tokens
            heap_c.check_invariants()
            scan_c.check_invariants()
        assert heap_c.hits == scan_c.hits
        assert heap_c.misses == scan_c.misses
        assert heap_c.evicted_tokens == scan_c.evicted_tokens


@st.composite
def token_seqs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    return [draw(st.integers(min_value=0, max_value=5)) for _ in range(n)]


@pytest.mark.parametrize("eviction", ["heap", "scan"])
class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(seqs=st.lists(token_seqs(), min_size=1, max_size=12))
    def test_insert_then_match_full(self, eviction, seqs):
        c = RadixPrefixCache(eviction=eviction)
        for s in seqs:
            c.insert(s)
            assert c.match(s) == len(s)
        c.check_invariants()

    @settings(max_examples=60, deadline=None)
    @given(seqs=st.lists(token_seqs(), min_size=1, max_size=12))
    def test_total_tokens_equals_unique_prefix_mass(self, eviction, seqs):
        """total_tokens == number of distinct prefixes (trie nodes at token
        granularity), independent of insertion order."""
        c = RadixPrefixCache(eviction=eviction)
        for s in seqs:
            c.insert(s)
        prefixes = {tuple(s[:k]) for s in seqs for k in range(1, len(s) + 1)}
        assert c.total_tokens == len(prefixes)
        c.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(seqs=st.lists(token_seqs(), min_size=2, max_size=10),
           n_evict=st.integers(min_value=1, max_value=20))
    def test_eviction_preserves_invariants(self, eviction, seqs, n_evict):
        c = RadixPrefixCache(eviction=eviction)
        for s in seqs:
            c.insert(s)
        before = c.total_tokens
        freed = c.evict(n_evict)
        assert c.total_tokens == before - freed
        c.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(seqs=st.lists(token_seqs(), min_size=1, max_size=10))
    def test_match_never_exceeds_probe(self, eviction, seqs):
        c = RadixPrefixCache(eviction=eviction)
        for s in seqs:
            c.insert(s)
        for s in seqs:
            assert 0 <= c.match(s[:3]) <= 3

    @settings(max_examples=40, deadline=None)
    @given(seqs=st.lists(token_seqs(), min_size=1, max_size=10),
           n_evict=st.integers(min_value=1, max_value=20))
    def test_pinned_inserts_survive_eviction(self, eviction, seqs, n_evict):
        c = RadixPrefixCache(eviction=eviction)
        tickets = []
        for s in seqs:
            c.insert(s)
            tickets.append(c.pin(s))
        c.evict(n_evict)
        for s in seqs:
            assert c.match(s) == len(s)
        for t in tickets:
            c.unpin(t)
        c.check_invariants()
