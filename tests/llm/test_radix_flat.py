"""Unit-level flat radix backend tests: backend resolution, randomized
op-sequence equivalence against both node-backend eviction engines, LCP
edge cases on both backends, match_len side-effect-freeness under
eviction pressure, and pin-ticket semantics.

Engine-level equivalence (clocks, block allocations, preemption) lives
in test_radix_equivalence.py; this file closes the cache-level contract
with per-step invariant checks.
"""

import random

import pytest

from repro.errors import CapacityError, ServingError
from repro.llm.blocks import BlockManager
from repro.llm.radix import (
    RadixPrefixCache,
    _FlatRadixCache,
    pack_tokens,
    serving_radix_enabled,
)

pytestmark = pytest.mark.skipif(
    not serving_radix_enabled(),
    reason="flat radix backend unavailable (numpy missing or "
    "REPRO_SERVING_RADIX=0)",
)


def trio(capacity_tokens=None, block_tokens=4):
    """(flat, heap, scan) caches over identical block pools (or none)."""
    def bm():
        if capacity_tokens is None:
            return None
        return BlockManager(capacity_tokens, block_tokens)

    return (
        RadixPrefixCache(backend="flat", block_manager=bm()),
        RadixPrefixCache(eviction="heap", block_manager=bm()),
        RadixPrefixCache(eviction="scan", block_manager=bm()),
    )


COUNTER_KEYS = (
    "nodes",
    "total_tokens",
    "hits",
    "misses",
    "evicted_tokens",
    "evicted_nodes",
)


def assert_counters_agree(caches):
    stats = [c.stats() for c in caches]
    for key in COUNTER_KEYS:
        vals = [s[key] for s in stats]
        assert len(set(vals)) == 1, (key, vals)


class TestBackendResolution:
    def test_default_is_flat(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_FASTPATH", raising=False)
        assert isinstance(RadixPrefixCache(), _FlatRadixCache)
        assert RadixPrefixCache().backend == "flat"
        assert RadixPrefixCache().eviction == "flat-lru"

    def test_explicit_backends(self):
        assert RadixPrefixCache(backend="flat").backend == "flat"
        assert RadixPrefixCache(backend="node").backend == "node"
        with pytest.raises(ValueError):
            RadixPrefixCache(backend="trie")

    def test_explicit_eviction_selects_node_backend(self):
        # Tests and oracles that name an eviction engine get the node
        # tree — the flat backend owns its own eviction order.
        assert RadixPrefixCache(eviction="heap").backend == "node"
        assert RadixPrefixCache(eviction="scan").backend == "node"

    def test_flat_rejects_explicit_eviction(self):
        with pytest.raises(ServingError):
            RadixPrefixCache(backend="flat", eviction="heap")

    def test_radix_flag_disables_flat(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_FASTPATH", raising=False)
        monkeypatch.setenv("REPRO_SERVING_RADIX", "0")
        c = RadixPrefixCache()
        assert c.backend == "node" and c.eviction == "heap"
        # Forcing the backend overrides the flag.
        assert RadixPrefixCache(backend="flat").backend == "flat"

    def test_fastpath_flag_disables_flat(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_FASTPATH", "0")
        c = RadixPrefixCache()
        assert c.backend == "node" and c.eviction == "scan"


class TestLcpEdgeCases:
    """_common_prefix_len / flat-LCP boundary shapes, on both backends
    (satellite: empty edge, exact-edge boundary, mid-block split)."""

    @pytest.mark.parametrize("backend", ["flat", "node"])
    def test_empty_probe(self, backend):
        c = RadixPrefixCache(backend=backend)
        assert c.insert(()) == 0
        assert c.match(()) == 0
        assert c.match_len(()) == 0
        c.check_invariants()

    @pytest.mark.parametrize("backend", ["flat", "node"])
    def test_exact_edge_boundary(self, backend):
        """Probe ending exactly at an edge boundary: full match, no split."""
        c = RadixPrefixCache(backend=backend)
        c.insert((1, 2, 3, 4, 5, 6))
        assert c.match_len((1, 2, 3, 4, 5, 6)) == 6
        before = c.stats()["nodes"]
        assert c.insert((1, 2, 3, 4, 5, 6)) == 0
        assert c.stats()["nodes"] == before  # re-insert splits nothing
        c.check_invariants()

    @pytest.mark.parametrize("backend", ["flat", "node"])
    def test_probe_shorter_than_edge(self, backend):
        """Probe exhausts mid-edge: partial match without divergence."""
        c = RadixPrefixCache(backend=backend)
        c.insert((1, 2, 3, 4, 5, 6))
        assert c.match_len((1, 2, 3)) == 3
        assert c.match_len((1,)) == 1
        # Inserting the shorter prefix splits the edge at the boundary.
        assert c.insert((1, 2, 3)) == 0
        assert c.stats()["nodes"] == 2
        c.check_invariants()

    @pytest.mark.parametrize("backend", ["flat", "node"])
    def test_divergence_at_each_offset(self, backend):
        """Mismatch at every position along a long edge (crosses the flat
        backend's scalar/vectorized compare threshold both ways)."""
        base = tuple(range(1, 25))
        for cut in range(1, len(base)):
            c = RadixPrefixCache(backend=backend)
            c.insert(base)
            probe = base[:cut] + (999,) + base[cut + 1 :]
            assert c.match_len(probe) == cut, cut
            assert c.match_len(probe, pack_tokens(probe)) == cut, cut
            c.check_invariants()

    @pytest.mark.parametrize("backend", ["flat", "node"])
    def test_single_token_edges(self, backend):
        c = RadixPrefixCache(backend=backend)
        c.insert((1,))
        c.insert((1, 2))
        c.insert((1, 3))
        assert c.match_len((1, 2)) == 2
        assert c.match_len((1, 3)) == 2
        assert c.match_len((1, 4)) == 1
        assert c.match_len((2,)) == 0
        c.check_invariants()

    @pytest.mark.parametrize("backend", ["flat", "node"])
    def test_mid_block_split_shares_straddle(self, backend):
        """Paged: a split inside a block leaves head and tail sharing the
        straddling block id."""
        bm = BlockManager(64, 4)
        c = RadixPrefixCache(backend=backend, block_manager=bm)
        c.insert((1, 2, 3, 4, 5, 6))  # 6 tokens: blocks [b0, b1]
        c.insert((1, 2, 3, 9, 9))  # split at 3 — inside b0
        c.check_invariants()
        assert c.match_len((1, 2, 3, 4, 5, 6)) == 6
        assert c.match_len((1, 2, 3, 9, 9)) == 5
        assert c.match_len((1, 2, 3)) == 3

    def test_flat_matches_node_on_packed_and_unpacked(self):
        flat = RadixPrefixCache(backend="flat")
        node = RadixPrefixCache(backend="node")
        rng = random.Random(11)
        for _ in range(300):
            toks = tuple(rng.randrange(4) for _ in range(rng.randrange(0, 30)))
            packed = pack_tokens(toks) if rng.random() < 0.5 else None
            assert flat.insert(toks, packed) == node.insert(toks, packed)
            probe = tuple(rng.randrange(4) for _ in range(rng.randrange(0, 30)))
            assert flat.match(probe) == node.match(probe)
        assert_counters_agree([flat, node])


class TestMatchLenSideEffectFree:
    def test_under_eviction_pressure(self):
        """match_len never touches stamps, counters, or eviction order —
        interleaving probes between evictions must not change victims."""
        probed, silent = trio(capacity_tokens=64), trio(capacity_tokens=64)
        rng = random.Random(23)
        seqs = [
            tuple(rng.randrange(5) for _ in range(rng.randrange(1, 16)))
            for _ in range(200)
        ]
        for i, toks in enumerate(seqs):
            for c in (*probed, *silent):
                try:
                    c.insert(toks)
                except CapacityError:
                    pass
            if i % 3 == 0:
                probe = tuple(rng.randrange(5) for _ in range(8))
                hits = [c.match_len(probe) for c in probed]
                assert len(set(hits)) == 1
            if i % 5 == 0:
                n = rng.randrange(1, 20)
                freed = [c.evict(n) for c in (*probed, *silent)]
                assert len(set(freed)) == 1, (i, freed)
            for c in (*probed, *silent):
                c.check_invariants()
        # The probed trio saw 60+ match_len calls the silent trio never
        # did; identical counters prove the probes were side-effect-free.
        assert_counters_agree([*probed, *silent])

    def test_counters_untouched(self):
        for c in trio():
            c.insert((1, 2, 3))
            before = dict(c.stats())
            assert c.match_len((1, 2, 3)) == 3
            assert c.match_len((9,)) == 0
            after = dict(c.stats())
            assert before == after


class TestRandomizedOpEquivalence:
    """Flat vs heap vs scan on random op sequences, invariants each step:
    the cache-level analogue of test_radix_equivalence.py."""

    @pytest.mark.parametrize("seed", range(4))
    def test_paged_ops(self, seed):
        rng = random.Random(seed)
        caches = trio(capacity_tokens=256, block_tokens=4)
        pins = []
        for step in range(1200):
            op = rng.random()
            toks = tuple(rng.randrange(6) for _ in range(rng.randrange(0, 24)))
            packed = pack_tokens(toks) if rng.random() < 0.5 else None
            if op < 0.35:
                outs = []
                for c in caches:
                    try:
                        outs.append(("ok", c.insert(toks, packed)))
                    except CapacityError:
                        outs.append(("cap", None))
                assert len(set(outs)) == 1, (step, outs)
            elif op < 0.6:
                assert len({c.match(toks, packed) for c in caches}) == 1
            elif op < 0.7:
                assert len({c.match_len(toks, packed) for c in caches}) == 1
            elif op < 0.8:
                tickets = [c.pin(toks) for c in caches]
                assert len({t is None for t in tickets}) == 1
                if tickets[0] is not None:
                    pins.append(tickets)
            elif op < 0.88 and pins:
                tickets = pins.pop(rng.randrange(len(pins)))
                for c, t in zip(caches, tickets):
                    c.unpin(t)
            else:
                n = rng.randrange(1, 30)
                unit = rng.choice(["tokens", "blocks"])
                prot = [
                    tuple(rng.randrange(6) for _ in range(rng.randrange(0, 10)))
                ]
                freed = [c.evict(n, protected=prot, unit=unit) for c in caches]
                assert len(set(freed)) == 1, (step, freed, unit)
            for c in caches:
                c.check_invariants()
            assert_counters_agree(caches)

    @pytest.mark.parametrize("seed", range(2))
    def test_unpaged_ops(self, seed):
        rng = random.Random(100 + seed)
        caches = trio()
        for step in range(1500):
            op = rng.random()
            toks = tuple(rng.randrange(5) for _ in range(rng.randrange(0, 20)))
            if op < 0.45:
                assert len({c.insert(toks) for c in caches}) == 1
            elif op < 0.75:
                assert len({c.match(toks) for c in caches}) == 1
            else:
                n = rng.randrange(1, 25)
                assert len({c.evict(n) for c in caches}) == 1
            for c in caches:
                c.check_invariants()
            assert_counters_agree(caches)

    def test_fork_paths_agree(self):
        rng = random.Random(31)
        flat = RadixPrefixCache(backend="flat", block_manager=BlockManager(512, 4))
        heap = RadixPrefixCache(eviction="heap", block_manager=BlockManager(512, 4))
        for _ in range(60):
            toks = tuple(rng.randrange(4) for _ in range(rng.randrange(1, 20)))
            try:
                a = flat.insert(toks)
                b = heap.insert(toks)
                assert a == b
            except CapacityError:
                continue
            ff = flat.fork_path(toks)
            hf = heap.fork_path(toks)
            assert [f.block_ids for f in ff] == [f.block_ids for f in hf]
            assert [f.n_tokens for f in ff] == [f.n_tokens for f in hf]
            fb = flat.fork_path_bundle(toks)
            hb = heap.fork_path_bundle(toks)
            assert (fb is None) == (hb is None)
            if fb is not None:
                assert sorted(fb.block_ids) == sorted(hb.block_ids)
                assert fb.n_tokens == hb.n_tokens
            for f in ff + hf + ([fb, hb] if fb is not None else []):
                (flat._bm if f in ff or f is fb else heap._bm).release(f)
            flat.check_invariants()
            heap.check_invariants()


class TestFlatPinning:
    def test_double_unpin_raises(self):
        c = RadixPrefixCache(backend="flat")
        c.insert((1, 2, 3))
        t = c.pin((1, 2, 3))
        c.unpin(t)
        with pytest.raises(ServingError):
            c.unpin(t)

    def test_unpin_none_is_noop(self):
        RadixPrefixCache(backend="flat").unpin(None)

    def test_pinned_path_survives_full_eviction(self):
        c = RadixPrefixCache(backend="flat")
        c.insert((1, 2, 3, 4))
        c.insert((9, 9))
        t = c.pin((1, 2, 3, 4))
        c.evict(10_000)
        assert c.match_len((1, 2, 3, 4)) == 4  # pinned path intact
        assert c.match_len((9, 9)) == 0  # unpinned path evicted
        c.unpin(t)
        assert c.evict(10_000) == 4
        c.check_invariants()

    def test_stale_ticket_after_slot_reuse_raises(self):
        c = RadixPrefixCache(backend="flat")
        c.insert((1, 2))
        t = c.pin((1, 2))
        c.unpin(t)
        c.evict(10)
        c.insert((5, 6))  # reuses the freed slot with a new node id
        with pytest.raises(ServingError):
            c.unpin(t)
        c.check_invariants()


class TestFlatStorage:
    def test_store_compaction_preserves_contents(self):
        """Eviction strands spans; enough churn triggers compaction, which
        must not change what matches."""
        c = RadixPrefixCache(backend="flat")
        rng = random.Random(5)
        live = []
        for i in range(400):
            toks = tuple(rng.randrange(8) for _ in range(rng.randrange(4, 40)))
            c.insert(toks)
            live.append(toks)
            if i % 7 == 0:
                c.evict(rng.randrange(1, 120))
            c.check_invariants()
        for toks in live[-10:]:
            hit = c.match_len(toks)
            assert 0 <= hit <= len(toks)

    def test_stats_shape(self):
        c = RadixPrefixCache(backend="flat")
        c.insert((1, 2, 3))
        s = c.stats()
        assert s["backend"] == "flat"
        assert s["eviction"] == "flat-lru"
        assert s["nodes"] == 1
        assert s["total_tokens"] == 3
        assert s["token_store_bytes"] >= 3 * 8
        n = RadixPrefixCache(backend="node")
        n.insert((1, 2, 3))
        ns = n.stats()
        assert ns["backend"] == "node"
        assert ns["nodes"] == 1 and ns["total_tokens"] == 3
        assert ns["token_store_bytes"] == 3 * 8
