"""Randomized equivalence: the cluster layer vs its oracles.

Two contracts, mirroring the repo's oracle convention:

1. **1-replica cluster == single engine, exactly.** A
   :class:`ClusterEngine` with one replica and round-robin routing (or
   any fleet shape under ``REPRO_SERVING_CLUSTER=0``) must reproduce
   :meth:`SimulatedLLMClient.generate_trace` on a fresh client —
   schedules, per-request clocks (``==``, same code path), aggregate
   counters, and radix-cache counters.

2. **spawn == inline, bit-identically.** Routing happens in the parent
   before any replica replays, so the spawn pool's merged metrics,
   makespan, and per-replica cache counters must equal the inline
   backend's exactly — enforced across multiple routing policies on
   randomized multi-tenant traces.
"""

import random

import pytest

from repro.llm.client import SimulatedLLMClient
from repro.llm.cluster import ClusterConfig, ClusterEngine
from repro.llm.engine import EngineConfig
from repro.llm.workload import TraceRequest, WorkloadTrace


@pytest.fixture(autouse=True)
def _cluster_layer_on(monkeypatch):
    """Pin the gate open even in the ``REPRO_SERVING_CLUSTER=0`` CI run
    — these are the tests that *prove* the gated layer equals its
    oracle (the explicit gate test re-sets the variable itself)."""
    monkeypatch.delenv("REPRO_SERVING_CLUSTER", raising=False)


def random_trace(rng, n_requests=40, n_tenants=4, header_words=60):
    """Multi-tenant arrival-timed trace with heavy per-tenant prefix
    sharing, occasional cold prompts, and mixed output specs."""
    tenants = [f"tenant-{i}" for i in range(n_tenants)]
    headers = {
        t: " ".join(f"{t}w{j}" for j in range(rng.randrange(20, header_words)))
        for t in tenants
    }
    t = 0.0
    reqs = []
    for i in range(n_requests):
        tenant = rng.choice(tenants)
        t += rng.expovariate(rng.choice([20.0, 80.0]))
        if rng.random() < 0.15:
            prompt = f"cold one-off prompt {i} {'z' * rng.randrange(1, 40)}"
        else:
            prompt = f"{headers[tenant]} row {i} val {rng.randrange(1000)}"
        if rng.random() < 0.3:
            kwargs = dict(output_text=f"answer {i} " + "w " * rng.randrange(1, 6))
        else:
            kwargs = dict(output_len=rng.randrange(0, 8))
        reqs.append(
            TraceRequest(arrival_s=t, prompt=prompt, tenant=tenant, **kwargs)
        )
    return WorkloadTrace(reqs, name=f"rand-{n_requests}")


def assert_cluster_matches_single(cres, sres, engine):
    """Cluster result vs a single-engine TraceResult: exact equality on
    every merged field and on the replica's radix-cache counters."""
    er = sres.engine_result
    assert cres.request_metrics == er.request_metrics
    assert cres.total_seconds == er.total_seconds
    assert cres.prompt_tokens == er.prompt_tokens
    assert cres.cached_tokens == er.cached_tokens
    assert cres.prefill_tokens == er.prefill_tokens
    assert cres.decode_tokens == er.decode_tokens
    assert cres.scheduler == er.scheduler
    r = cres.engine_results[0]
    assert r.decode_steps == er.decode_steps
    assert r.peak_kv_tokens == er.peak_kv_tokens
    assert r.max_batch_seen == er.max_batch_seen
    assert r.peak_kv_blocks == er.peak_kv_blocks
    assert r.fragmentation_tokens == er.fragmentation_tokens
    stats = cres.replicas[0]
    cache = engine.cache
    assert stats.cache_hits == cache.hits
    assert stats.cache_misses == cache.misses
    assert stats.cache_evicted_tokens == cache.evicted_tokens
    assert stats.cache_total_tokens == cache.total_tokens
    # The SLO rollup is a pure function of the metrics, but compare the
    # headline numbers anyway — they are what the benchmarks report.
    assert cres.slo.attainment == sres.slo.attainment
    assert cres.slo.ttft.p95 == sres.slo.ttft.p95


ENGINE_SHAPES = [
    dict(max_batch_size=4),
    dict(max_batch_size=2, kv_capacity_tokens=900),
    dict(max_batch_size=8, kv_accounting="tokens"),
    dict(max_batch_size=4, scheduler="prefix-affinity"),
]


class TestSingleReplicaOracle:
    """1-replica round-robin cluster == SimulatedLLMClient.generate_trace."""

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized(self, seed):
        rng = random.Random(1000 + seed)
        trace = random_trace(rng)
        ecfg = EngineConfig(**ENGINE_SHAPES[seed % len(ENGINE_SHAPES)])
        deadline = rng.choice([None, 1.0, 5.0])

        cluster = ClusterEngine(ClusterConfig(n_replicas=1, engine=ecfg))
        cres = cluster.run_trace(trace, deadline_s=deadline)

        client = SimulatedLLMClient(engine_config=ecfg)
        sres = client.generate_trace(trace, deadline_s=deadline)

        assert_cluster_matches_single(cres, sres, client.engine)

    def test_gate_forces_oracle_shape(self, monkeypatch):
        """REPRO_SERVING_CLUSTER=0: even a 4-replica prefix-aware spawn
        config replays as the single-engine reference."""
        monkeypatch.setenv("REPRO_SERVING_CLUSTER", "0")
        rng = random.Random(77)
        trace = random_trace(rng, n_requests=30)
        ecfg = EngineConfig(max_batch_size=4)
        cres = ClusterEngine(
            ClusterConfig(
                n_replicas=4,
                routing="prefix-aware",
                backend="spawn",
                engine=ecfg,
            )
        ).run_trace(trace)
        monkeypatch.delenv("REPRO_SERVING_CLUSTER")
        client = SimulatedLLMClient(engine_config=ecfg)
        sres = client.generate_trace(trace)
        assert_cluster_matches_single(cres, sres, client.engine)

    @pytest.mark.parametrize("routing", ["least-queue", "tenant-sharded"])
    def test_any_routing_degenerates_at_one_replica(self, routing):
        """With one replica every policy routes everything to replica 0,
        so the oracle holds regardless of the configured policy."""
        rng = random.Random(55)
        trace = random_trace(rng, n_requests=25)
        ecfg = EngineConfig(max_batch_size=4)
        cres = ClusterEngine(
            ClusterConfig(n_replicas=1, routing=routing, engine=ecfg)
        ).run_trace(trace)
        client = SimulatedLLMClient(engine_config=ecfg)
        sres = client.generate_trace(trace)
        assert_cluster_matches_single(cres, sres, client.engine)


def assert_backends_identical(a, b):
    assert a.request_metrics == b.request_metrics
    assert a.total_seconds == b.total_seconds
    assert a.prompt_tokens == b.prompt_tokens
    assert a.cached_tokens == b.cached_tokens
    assert a.prefill_tokens == b.prefill_tokens
    assert a.decode_tokens == b.decode_tokens
    assert a.load_skew == b.load_skew
    assert len(a.replicas) == len(b.replicas)
    for sa, sb in zip(a.replicas, b.replicas):
        assert sa.n_requests == sb.n_requests
        assert sa.prompt_tokens == sb.prompt_tokens
        assert sa.cached_tokens == sb.cached_tokens
        assert sa.total_seconds == sb.total_seconds
        assert sa.peak_kv_tokens == sb.peak_kv_tokens
        assert sa.peak_queue_depth == sb.peak_queue_depth
        assert sa.cache_hits == sb.cache_hits
        assert sa.cache_misses == sb.cache_misses
        assert sa.cache_evicted_tokens == sb.cache_evicted_tokens
        assert sa.cache_total_tokens == sb.cache_total_tokens
    assert a.slo.attainment == b.slo.attainment


class TestSpawnVsInline:
    """backend='spawn' merges bit-identically with backend='inline'.

    If the environment forbids process pools the spawn run degrades to
    the in-process transport — the assertions still hold (that fallback
    is the point), but the run only *proves* cross-process identity when
    ``worker_transport == "shared-memory"``.
    """

    @pytest.mark.parametrize(
        "routing,seed",
        [
            ("round-robin", 0),
            ("prefix-aware", 1),
            ("least-queue", 2),
            ("tenant-sharded", 3),
        ],
    )
    def test_bit_identical(self, routing, seed):
        rng = random.Random(2000 + seed)
        trace = random_trace(rng, n_requests=36, n_tenants=5)
        ecfg = EngineConfig(max_batch_size=2, kv_capacity_tokens=950)

        inline = ClusterEngine(
            ClusterConfig(
                n_replicas=3, routing=routing, backend="inline", engine=ecfg
            )
        ).run_trace(trace, deadline_s=2.0)
        spawn = ClusterEngine(
            ClusterConfig(
                n_replicas=3, routing=routing, backend="spawn", engine=ecfg
            )
        ).run_trace(trace, deadline_s=2.0)

        assert inline.worker_transport == "in-process"
        assert spawn.backend == "spawn"
        assert_backends_identical(inline, spawn)

    def test_spawn_single_replica_stays_inline(self):
        """A 1-replica spawn config has nothing to parallelize: the
        replay stays in-process (and therefore equals the oracle)."""
        rng = random.Random(9)
        trace = random_trace(rng, n_requests=20)
        res = ClusterEngine(
            ClusterConfig(n_replicas=1, backend="spawn")
        ).run_trace(trace)
        assert res.worker_transport == "in-process"
