"""Tests for the deterministic tokenizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.tokenizer import HashTokenizer


class TestBasics:
    def test_roundtrip(self):
        tok = HashTokenizer()
        text = 'Hello, world! {"field": "value"}'
        assert tok.decode(tok.encode(text)) == text

    def test_empty(self):
        tok = HashTokenizer()
        assert tok.encode("") == []
        assert tok.decode([]) == ""

    def test_same_text_same_ids(self):
        tok = HashTokenizer()
        assert tok.encode("abc def") == tok.encode("abc def")

    def test_long_words_chunked(self):
        tok = HashTokenizer(max_piece_len=4)
        ids = tok.encode("abcdefgh")
        assert len(ids) == 2
        assert tok.decode(ids) == "abcdefgh"

    def test_count_matches_encode(self):
        tok = HashTokenizer()
        text = "the quick brown fox, jumped over 42 lazy dogs!"
        assert tok.count(text) == len(tok.encode(text))

    def test_count_does_not_grow_vocab(self):
        tok = HashTokenizer()
        tok.count("completely new words here")
        assert tok.vocab_size == 0

    def test_realistic_density(self):
        tok = HashTokenizer()
        text = " ".join(["review"] * 50 + ["excellent"] * 50)
        # ~2 pieces per word+space: well under 1 token per char.
        assert len(tok.encode(text)) < len(text) / 2

    def test_invalid_piece_len(self):
        with pytest.raises(ValueError):
            HashTokenizer(max_piece_len=0)

    def test_unknown_id_decode(self):
        tok = HashTokenizer()
        with pytest.raises(ValueError):
            tok.decode([999])

    def test_negative_id_decode_rejected(self):
        """Regression: Python's index-from-the-end semantics made
        decode([-1]) silently return the last vocab piece."""
        tok = HashTokenizer()
        tok.encode("some words to fill the vocabulary")
        with pytest.raises(ValueError):
            tok.decode([-1])
        with pytest.raises(ValueError):
            tok.decode([0, -3])
        # The boundary id just past the vocabulary is rejected too.
        with pytest.raises(ValueError):
            tok.decode([tok.vocab_size])


class TestPrefixStability:
    def test_shared_prefix_shares_tokens(self):
        tok = HashTokenizer()
        a = tok.encode('header {"f": "x"}')
        b = tok.encode('header {"f": "y"}')
        # Common string prefix 'header {"f": "' => common token prefix.
        k = 0
        while k < min(len(a), len(b)) and a[k] == b[k]:
            k += 1
        assert k >= len(tok.encode('header {"f": "')) - 1

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="ab c.", min_size=0, max_size=40),
           st.text(alphabet="ab c.", min_size=0, max_size=40))
    def test_roundtrip_property(self, a, b):
        tok = HashTokenizer()
        text = a + b
        assert tok.decode(tok.encode(text)) == text

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="xy z,", min_size=1, max_size=30))
    def test_concatenation_extends_tokens(self, prefix):
        # A prefix ending in punctuation/space is a piece boundary:
        # encode(prefix + suffix) starts with encode(prefix).
        tok = HashTokenizer()
        p = prefix + "."
        full = tok.encode(p + "tail words")
        head = tok.encode(p)
        assert full[: len(head)] == head
