"""Randomized equivalence for the continuous-batching layer.

Two contracts:

* **Mode equivalence with the features ON**: with decode preemption
  (recompute or swap), chunked prefill, and the deadline EDF scheduler
  all active, the three replay modes still agree — stepwise vs event to
  float rounding (1e-6 relative clocks, identical integer metrics
  including every preemption/chunk counter), event vs vector exactly
  (bit-identical clocks).

* **The one-shot oracle**: ``REPRO_SERVING_PREEMPT=0`` forces a config
  with preemption, chunking and the deadline policy down to the
  pre-continuous-batching engine — preemption off, monolithic prefill,
  fcfs — reproducing a plain one-shot run bit for bit.
"""

import random

import pytest

from repro.errors import ServingError
from repro.llm.blocks import paged_accounting_enabled
from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.radix import pack_tokens
from repro.llm.request import Request
from repro.llm.scheduler import serving_online_enabled, serving_preempt_enabled

#: Mode-equivalence holds under ANY oracle flag (both sides degrade the
#: same way), but the tests asserting the machinery *fires* only make
#: sense with the continuous-batching layer actually on.
features_on = pytest.mark.skipif(
    not (serving_preempt_enabled() and serving_online_enabled()),
    reason="continuous batching disabled "
    "(REPRO_SERVING_PREEMPT=0 or REPRO_SERVING_ONLINE=0)",
)

#: Tenant quotas are block-denominated: without paged accounting there is
#: no BlockManager to enforce them against.
needs_paged = pytest.mark.skipif(
    not paged_accounting_enabled(),
    reason="tenant KV quotas need paged accounting (REPRO_SERVING_PAGED=0)",
)

#: Tight serving point: 4 slots and a small KV pool, so the deadline
#: policy has constant preemption pressure from the bursty arrivals.
PRESSURE_CFG = dict(max_batch_size=4, kv_capacity_tokens=4000)


def preempt_workload(rng, n_requests=40, vocab=60, max_len=80, max_out=14):
    """Bursty arrival-stamped requests with heavy prefix sharing, tenants,
    per-request deadlines, zero-output requests, and mixed packed/unpacked
    probes — the full surface the preemption machinery touches."""
    pool = [
        tuple(rng.randrange(vocab) for _ in range(rng.randrange(8, max_len)))
        for _ in range(5)
    ]
    reqs = []
    t = 0.0
    for i in range(n_requests):
        # MMPP-ish arrivals: tight intra-burst gaps, occasional long gaps.
        t += rng.uniform(0.001, 0.02) if rng.random() < 0.8 else rng.uniform(
            0.3, 1.2
        )
        if rng.random() < 0.7:
            base = rng.choice(pool)
            base = base[: rng.randrange(1, len(base) + 1)]
        else:
            base = ()
        suffix = tuple(
            rng.randrange(vocab) for _ in range(rng.randrange(0, max_len))
        )
        toks = base + suffix or (rng.randrange(vocab),)
        out = 0 if rng.random() < 0.08 else rng.randrange(1, max_out)
        packed = pack_tokens(toks) if rng.random() < 0.5 else None
        reqs.append(
            Request(
                request_id=i,
                prompt_tokens=toks,
                output_tokens=out,
                prompt_bytes=packed,
                arrival_s=t,
                tenant=f"tenant-{i % 3}",
                deadline_s=rng.choice([None, 0.5, 1.5, 4.0]),
            )
        )
    return reqs


def clone(requests):
    return [
        Request(
            r.request_id,
            r.prompt_tokens,
            r.output_tokens,
            prompt_bytes=r.prompt_bytes,
            arrival_s=r.arrival_s,
            tenant=r.tenant,
            deadline_s=r.deadline_s,
        )
        for r in requests
    ]


def run_engine(requests, mode, **cfg_kwargs):
    eng = SimulatedLLMEngine(
        LLAMA3_8B, CLUSTER_1XL4, EngineConfig(mode=mode, **cfg_kwargs)
    )
    eng.submit_all(requests)
    result = eng.run()
    eng.cache.check_invariants()
    if eng.blocks is not None:
        eng.blocks.check_invariants()
    return eng, result


INT_RESULT_FIELDS = (
    "prompt_tokens",
    "cached_tokens",
    "prefill_tokens",
    "decode_tokens",
    "decode_steps",
    "peak_kv_tokens",
    "max_batch_seen",
    "n_preemptions",
    "preempted_tokens_recomputed",
    "preempted_tokens_swapped",
    "n_prefill_chunks",
)

INT_METRIC_FIELDS = (
    "prompt_tokens",
    "cached_tokens",
    "prefill_tokens",
    "output_tokens",
    "n_preemptions",
    "preempted_tokens_recomputed",
    "preempted_tokens_swapped",
    "n_prefill_chunks",
)

CLOCK_FIELDS = ("admitted_at_s", "first_token_at_s", "finished_at_s")


def assert_results_match(r_a, r_b, exact_clocks):
    """Integer metrics identical; clocks exact (event vs vector) or to
    1e-6 relative (stepwise vs event)."""
    for f in INT_RESULT_FIELDS:
        assert getattr(r_b, f) == getattr(r_a, f), f
    if exact_clocks:
        assert r_b.total_seconds == r_a.total_seconds
    else:
        assert r_b.total_seconds == pytest.approx(
            r_a.total_seconds, rel=1e-6, abs=1e-9
        )
    assert len(r_b.request_metrics) == len(r_a.request_metrics)
    for ma, mb in zip(r_a.request_metrics, r_b.request_metrics):
        assert mb.request_id == ma.request_id
        for f in INT_METRIC_FIELDS:
            assert getattr(mb, f) == getattr(ma, f), (ma.request_id, f)
        for f in CLOCK_FIELDS:
            if exact_clocks:
                assert getattr(mb, f) == getattr(ma, f), (ma.request_id, f)
            else:
                assert getattr(mb, f) == pytest.approx(
                    getattr(ma, f), rel=1e-6, abs=1e-9
                ), (ma.request_id, f)


class TestModeEquivalenceWithPreemption:
    """stepwise ~ event == vector with preemption + chunking + EDF on."""

    @pytest.mark.parametrize("preemption", ["recompute", "swap"])
    @pytest.mark.parametrize("chunk", [None, 64])
    @pytest.mark.parametrize("seed", range(4))
    def test_three_modes_agree(self, seed, chunk, preemption):
        reqs = preempt_workload(random.Random(seed))
        cfg = dict(
            scheduler="deadline",
            scheduler_deadline_s=1.0,
            preemption=preemption,
            prefill_chunk_tokens=chunk,
            **PRESSURE_CFG,
        )
        _, r_step = run_engine(clone(reqs), "stepwise", **cfg)
        _, r_event = run_engine(clone(reqs), "event", **cfg)
        _, r_vect = run_engine(clone(reqs), "vector", **cfg)
        assert_results_match(r_step, r_event, exact_clocks=False)
        assert_results_match(r_event, r_vect, exact_clocks=True)
        # Rollups are exactly the per-request sums.
        for res in (r_event, r_vect):
            assert res.n_preemptions == sum(
                m.n_preemptions for m in res.request_metrics
            )
            assert res.n_prefill_chunks == sum(
                m.n_prefill_chunks for m in res.request_metrics
            )

    @pytest.mark.parametrize(
        "cfg_axis",
        [
            dict(kv_accounting="tokens"),
            dict(enable_prefix_cache=False),
            dict(block_tokens=1),
        ],
    )
    @pytest.mark.parametrize("seed", range(2))
    def test_accounting_axes_agree(self, seed, cfg_axis):
        reqs = preempt_workload(random.Random(300 + seed))
        cfg = dict(
            scheduler="deadline",
            scheduler_deadline_s=1.0,
            preemption="swap",
            prefill_chunk_tokens=48,
            **PRESSURE_CFG,
        )
        cfg.update(cfg_axis)
        _, r_step = run_engine(clone(reqs), "stepwise", **cfg)
        _, r_event = run_engine(clone(reqs), "event", **cfg)
        _, r_vect = run_engine(clone(reqs), "vector", **cfg)
        assert_results_match(r_step, r_event, exact_clocks=False)
        assert_results_match(r_event, r_vect, exact_clocks=True)

    @features_on
    def test_preemption_actually_fires(self):
        """Guard against a silently inert preemption path: under slot
        pressure with mixed deadlines, victims are evicted, re-admitted,
        and every mode reports the same nonzero counters."""
        rng = random.Random(12345)
        reqs = preempt_workload(rng, n_requests=60)
        cfg = dict(
            scheduler="deadline",
            scheduler_deadline_s=0.8,
            preemption="recompute",
            **PRESSURE_CFG,
        )
        _, r = run_engine(clone(reqs), "vector", **cfg)
        assert r.n_preemptions > 0
        assert r.preempted_tokens_recomputed > 0
        assert r.preempted_tokens_swapped == 0
        cfg["preemption"] = "swap"
        _, r_swap = run_engine(clone(reqs), "vector", **cfg)
        assert r_swap.n_preemptions > 0
        assert r_swap.preempted_tokens_recomputed == 0
        assert r_swap.preempted_tokens_swapped > 0

    @pytest.mark.skipif(
        not serving_preempt_enabled(),
        reason="chunked prefill disabled (REPRO_SERVING_PREEMPT=0)",
    )
    def test_chunked_prefill_fires_and_counts(self):
        rng = random.Random(777)
        reqs = preempt_workload(rng, max_len=120)
        cfg = dict(
            scheduler="deadline",
            prefill_chunk_tokens=32,
            preemption="recompute",
            **PRESSURE_CFG,
        )
        _, r = run_engine(clone(reqs), "vector", **cfg)
        assert r.n_prefill_chunks > 0
        # Every chunked request was split into >= 2 pieces.
        for m in r.request_metrics:
            assert m.n_prefill_chunks != 1


class TestOneShotOracle:
    """REPRO_SERVING_PREEMPT=0 reproduces the pre-change engine bit for
    bit, even with preemption/chunking/deadline configured."""

    @pytest.mark.parametrize("mode", ["stepwise", "event", "vector"])
    @pytest.mark.parametrize("seed", range(3))
    def test_env_flag_forces_one_shot(self, mode, seed, monkeypatch):
        reqs = preempt_workload(random.Random(500 + seed))

        # Baseline: the one-shot engine, no continuous-batching config.
        _, r_plain = run_engine(
            clone(reqs), mode, scheduler="fcfs", **PRESSURE_CFG
        )

        monkeypatch.setenv("REPRO_SERVING_PREEMPT", "0")
        _, r_forced = run_engine(
            clone(reqs),
            mode,
            scheduler="deadline",
            scheduler_deadline_s=1.0,
            preemption="swap",
            prefill_chunk_tokens=48,
            **PRESSURE_CFG,
        )
        assert r_forced.preemption == "off"
        assert r_forced.scheduler == "fcfs"
        assert_results_match(r_plain, r_forced, exact_clocks=True)
        assert r_forced.n_preemptions == 0
        assert r_forced.n_prefill_chunks == 0

    @pytest.mark.parametrize("mode", ["stepwise", "event", "vector"])
    def test_off_config_matches_plain_fcfs(self, mode):
        """preemption="off" + monolithic prefill is the same engine as
        before the refactor regardless of the env flag."""
        reqs = preempt_workload(random.Random(900))
        _, r_plain = run_engine(
            clone(reqs), mode, scheduler="fcfs", **PRESSURE_CFG
        )
        _, r_off = run_engine(
            clone(reqs),
            mode,
            scheduler="fcfs",
            preemption="off",
            prefill_chunk_tokens=None,
            **PRESSURE_CFG,
        )
        assert_results_match(r_plain, r_off, exact_clocks=True)


class TestTenantQuota:
    @needs_paged
    def test_quota_bounds_concurrent_blocks(self):
        """With one tenant capped, its requests admit in smaller groups
        but all complete; the ledger returns to zero."""
        rng = random.Random(42)
        reqs = preempt_workload(rng, n_requests=30)
        quota = {f"tenant-{i}": 12 for i in range(3)}
        eng, r = run_engine(
            clone(reqs),
            "vector",
            scheduler="deadline",
            scheduler_deadline_s=1.0,
            preemption="swap",
            tenant_kv_quota_blocks=quota,
            **PRESSURE_CFG,
        )
        assert len(r.request_metrics) == len(reqs)
        for t in quota:
            assert eng.blocks.tenant_used(t) == 0

    @pytest.mark.parametrize("mode", ["stepwise", "event", "vector"])
    def test_quota_equivalent_across_modes(self, mode):
        reqs = preempt_workload(random.Random(77), n_requests=30)
        cfg = dict(
            scheduler="deadline",
            scheduler_deadline_s=1.0,
            preemption="recompute",
            prefill_chunk_tokens=64,
            tenant_kv_quota_blocks={"tenant-0": 14},
            **PRESSURE_CFG,
        )
        _, r_ref = run_engine(clone(reqs), "event", **cfg)
        _, r = run_engine(clone(reqs), mode, **cfg)
        assert_results_match(r_ref, r, exact_clocks=(mode != "stepwise"))

    @needs_paged
    def test_oversized_request_names_tenant_and_quota(self):
        from repro.errors import CapacityError

        eng = SimulatedLLMEngine(
            LLAMA3_8B,
            CLUSTER_1XL4,
            EngineConfig(
                tenant_kv_quota_blocks={"small": 2},
                **PRESSURE_CFG,
            ),
        )
        eng.submit(
            Request(0, tuple(range(400)), 8, tenant="small")
        )
        with pytest.raises(CapacityError, match="'small' is capped at 2"):
            eng.run()


class TestConfigValidation:
    def test_unknown_preemption_mode_rejected(self):
        with pytest.raises(ServingError, match="unknown preemption mode"):
            EngineConfig(preemption="paused")

    @pytest.mark.parametrize("mode", ["off", "recompute", "swap"])
    def test_known_preemption_modes_accepted(self, mode):
        assert EngineConfig(preemption=mode).preemption == mode

    @pytest.mark.parametrize("chunk", [0, -1, -64])
    def test_non_positive_chunk_rejected(self, chunk):
        with pytest.raises(ServingError, match="prefill_chunk_tokens"):
            EngineConfig(prefill_chunk_tokens=chunk)

    def test_positive_chunk_and_none_accepted(self):
        assert EngineConfig(prefill_chunk_tokens=1).prefill_chunk_tokens == 1
        assert EngineConfig().prefill_chunk_tokens is None

    @pytest.mark.parametrize("bad", [0.0, -2.5])
    def test_non_positive_scheduler_deadline_rejected(self, bad):
        with pytest.raises(ServingError, match="scheduler_deadline_s"):
            EngineConfig(scheduler_deadline_s=bad)
