"""Tests for prompt construction and the high-level client."""

import pytest

from repro.core.table import Cell
from repro.errors import ServingError
from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig
from repro.llm.prompts import SYSTEM_TEMPLATE, build_prompt, escape_json_string, render_cells


class TestPrompts:
    def test_header_contains_query(self):
        p = build_prompt("Is it good?", [Cell("f", "v")])
        assert "Is it good?" in p
        assert p.startswith("You are a data analyst.")

    def test_cells_render_in_order(self):
        p = render_cells([Cell("b", "2"), Cell("a", "1")])
        assert p == '{"b": "2", "a": "1"}'

    def test_shared_header_is_string_prefix(self):
        q = "Summarize:"
        p1 = build_prompt(q, [Cell("f", "x")])
        p2 = build_prompt(q, [Cell("f", "y")])
        header = SYSTEM_TEMPLATE.format(query=q)
        assert p1.startswith(header) and p2.startswith(header)

    def test_escaping(self):
        assert escape_json_string('say "hi"\n') == 'say \\"hi\\"\\n'
        p = render_cells([Cell("f", 'quote " and \\ slash')])
        assert '\\"' in p and "\\\\" in p

    def test_field_order_changes_suffix_not_header(self):
        q = "q"
        a = build_prompt(q, [Cell("x", "1"), Cell("y", "2")])
        b = build_prompt(q, [Cell("y", "2"), Cell("x", "1")])
        header = SYSTEM_TEMPLATE.format(query=q)
        assert a != b
        assert a[: len(header)] == b[: len(header)]


class TestClient:
    def test_generate_returns_outputs(self):
        client = SimulatedLLMClient()
        res = client.generate(["hello world"] * 3, outputs=["yes", "no", "yes"])
        assert res.outputs == ["yes", "no", "yes"]
        assert res.total_seconds > 0

    def test_cache_persists_across_calls(self):
        client = SimulatedLLMClient()
        first = client.generate(["the same long prompt " * 20], output_lens=[1])
        second = client.generate(["the same long prompt " * 20], output_lens=[1])
        assert first.prefix_hit_rate == 0.0
        assert second.prefix_hit_rate > 0.9

    def test_reset_cache(self):
        client = SimulatedLLMClient()
        client.generate(["abc def " * 30], output_lens=[1])
        client.reset_cache()
        res = client.generate(["abc def " * 30], output_lens=[1])
        assert res.prefix_hit_rate == 0.0

    def test_misaligned_outputs_rejected(self):
        client = SimulatedLLMClient()
        with pytest.raises(ServingError):
            client.generate(["a", "b"], outputs=["only one"])
        with pytest.raises(ServingError):
            client.generate(["a"], output_lens=[1, 2])

    def test_output_lens_drive_decode_time(self):
        short = SimulatedLLMClient().generate(["p " * 50] * 4, output_lens=[2] * 4)
        long = SimulatedLLMClient().generate(["p " * 50] * 4, output_lens=[60] * 4)
        assert long.total_seconds > short.total_seconds

    def test_no_cache_config(self):
        client = SimulatedLLMClient(engine_config=EngineConfig(enable_prefix_cache=False))
        res = client.generate(["same prompt " * 30] * 3, output_lens=[1] * 3)
        assert res.prefix_hit_rate == 0.0
