"""Tests for the arrival-timed workload trace subsystem."""

import pytest

from repro.errors import ServingError
from repro.llm.workload import (
    ARRIVAL_PROCESSES,
    TenantSpec,
    TraceRequest,
    WorkloadTrace,
    bursty_arrivals,
    diurnal_arrivals,
    make_arrivals,
    poisson_arrivals,
    synthesize_tenant_trace,
)


class TestTraceRequest:
    def test_validation(self):
        with pytest.raises(ServingError):
            TraceRequest(-1.0, "p")
        with pytest.raises(ServingError):
            TraceRequest(float("inf"), "p")
        with pytest.raises(ServingError):
            TraceRequest(0.0, "")
        with pytest.raises(ServingError):
            TraceRequest(0.0, "p", output_len=-1)

    def test_dict_round_trip(self):
        r = TraceRequest(1.5, "hello", tenant="a", job="j", output_len=4)
        assert TraceRequest.from_dict(r.to_dict()) == r

    def test_deadline_validation(self):
        with pytest.raises(ServingError):
            TraceRequest(0.0, "p", deadline_s=0.0)
        with pytest.raises(ServingError):
            TraceRequest(0.0, "p", deadline_s=-2.0)
        assert TraceRequest(0.0, "p", deadline_s=1.5).deadline_s == 1.5

    def test_deadline_dict_round_trip(self):
        r = TraceRequest(1.0, "p", deadline_s=2.5)
        d = r.to_dict()
        assert d["deadline_s"] == 2.5
        assert TraceRequest.from_dict(d) == r
        # Absent deadline stays absent: the key is omitted entirely so
        # old traces and new traces without SLOs serialize identically.
        bare = TraceRequest(1.0, "p")
        assert "deadline_s" not in bare.to_dict()
        assert TraceRequest.from_dict(bare.to_dict()).deadline_s is None


class TestWorkloadTrace:
    def make(self):
        return WorkloadTrace(
            [
                TraceRequest(2.0, "late", tenant="b"),
                TraceRequest(0.5, "early", tenant="a"),
                TraceRequest(1.0, "mid", tenant="a", output_text="ans"),
            ],
            name="t",
            metadata={"k": 1},
        )

    def test_sorted_on_construction(self):
        tr = self.make()
        assert [r.prompt for r in tr.requests] == ["early", "mid", "late"]
        assert tr.duration_s == 2.0
        assert tr.tenants == ("a", "b")
        assert tr.n_requests == 3

    def test_stable_ties_preserve_submission_order(self):
        tr = WorkloadTrace(
            [TraceRequest(0.0, f"p{i}") for i in range(5)]
        )
        assert [r.prompt for r in tr.requests] == [f"p{i}" for i in range(5)]

    def test_json_round_trip(self, tmp_path):
        tr = self.make()
        path = tmp_path / "trace.json"
        tr.save(str(path))
        back = WorkloadTrace.load(str(path))
        assert back.name == tr.name
        assert back.metadata == tr.metadata
        assert back.requests == tr.requests

    def test_malformed_json_rejected(self):
        with pytest.raises(ServingError):
            WorkloadTrace.from_json("{\"nope\": 1}")
        with pytest.raises(ServingError):
            WorkloadTrace.from_json("not json at all")

    def test_at_time_zero(self):
        t0 = self.make().at_time_zero()
        assert all(r.arrival_s == 0.0 for r in t0.requests)
        # Arrival order (not original list order) is preserved.
        assert [r.prompt for r in t0.requests] == ["early", "mid", "late"]

    def test_at_time_zero_preserves_deadlines(self):
        tr = WorkloadTrace(
            [
                TraceRequest(1.0, "a", deadline_s=2.0),
                TraceRequest(0.0, "b"),
            ]
        )
        t0 = tr.at_time_zero()
        assert [r.deadline_s for r in t0.requests] == [None, 2.0]

    def test_json_round_trip_with_deadlines(self):
        tr = WorkloadTrace(
            [
                TraceRequest(0.0, "urgent", deadline_s=0.5),
                TraceRequest(0.1, "lax"),
            ],
            name="dl",
        )
        back = WorkloadTrace.from_json(tr.to_json())
        assert [r.deadline_s for r in back.requests] == [0.5, None]

    def test_offered_rate(self):
        tr = WorkloadTrace([TraceRequest(i * 0.5, "p") for i in range(5)])
        assert tr.offered_rate_rps() == pytest.approx(5 / 2.0)
        assert WorkloadTrace([]).offered_rate_rps() == 0.0


class TestArrivalProcesses:
    def test_poisson_shape(self):
        a = poisson_arrivals(200, 50.0, seed=3)
        assert len(a) == 200
        assert a == sorted(a)
        assert all(t > 0 for t in a)
        mean_gap = a[-1] / len(a)
        assert mean_gap == pytest.approx(1 / 50.0, rel=0.3)

    def test_poisson_deterministic(self):
        assert poisson_arrivals(20, 5.0, seed=1) == poisson_arrivals(20, 5.0, seed=1)
        assert poisson_arrivals(20, 5.0, seed=1) != poisson_arrivals(20, 5.0, seed=2)

    def test_bursty_has_gaps(self):
        a = bursty_arrivals(
            300, on_rate_rps=200.0, on_mean_s=0.2, off_mean_s=0.5, seed=0
        )
        assert len(a) == 300 and a == sorted(a)
        gaps = [b - c for b, c in zip(a[1:], a[:-1])]
        # OFF periods create gaps far above the ON interarrival scale.
        assert max(gaps) > 10 * (1 / 200.0)

    def test_bursty_off_trickle(self):
        a = bursty_arrivals(
            50, on_rate_rps=100.0, off_rate_rps=5.0, on_mean_s=0.1,
            off_mean_s=0.1, seed=4,
        )
        assert len(a) == 50 and a == sorted(a)

    def test_diurnal_shape(self):
        a = diurnal_arrivals(300, 50.0, period_s=10.0, amplitude=0.9, seed=0)
        assert len(a) == 300 and a == sorted(a)

    def test_validation(self):
        with pytest.raises(ServingError):
            poisson_arrivals(5, 0.0)
        with pytest.raises(ServingError):
            poisson_arrivals(-1, 1.0)
        with pytest.raises(ServingError):
            bursty_arrivals(5, 10.0, on_mean_s=0.0)
        with pytest.raises(ServingError):
            diurnal_arrivals(5, 10.0, amplitude=1.5)

    def test_dispatch(self):
        for name in ARRIVAL_PROCESSES:
            assert len(make_arrivals(name, 10, 20.0, seed=0)) == 10
        with pytest.raises(ServingError):
            make_arrivals("uniform", 10, 20.0)


class TestTenantSynthesis:
    def specs(self):
        return [
            TenantSpec("alpha", "movies-T1", policy="original", weight=2.0),
            TenantSpec("beta", "products-T1", policy="original", weight=1.0),
            TenantSpec("gamma", "movies-T2", policy="ggr", weight=1.0),
        ]

    def test_synthesis_basics(self):
        arrivals = poisson_arrivals(40, 100.0, seed=0)
        tr = synthesize_tenant_trace(self.specs(), arrivals, scale=0.004, seed=0)
        assert tr.n_requests == 40
        assert set(tr.tenants) <= {"alpha", "beta", "gamma"}
        assert len(tr.tenants) >= 2
        assert all(r.prompt for r in tr.requests)
        assert all(r.output_len is not None for r in tr.requests)
        # Prompts carry the operator's serialization format.
        assert any("data analyst" in r.prompt for r in tr.requests)
        assert tr.metadata["tenants"]["gamma"]["policy"] == "ggr"

    def test_weights_respected(self):
        arrivals = poisson_arrivals(300, 100.0, seed=1)
        tr = synthesize_tenant_trace(self.specs(), arrivals, scale=0.004, seed=1)
        counts = {t: 0 for t in ("alpha", "beta", "gamma")}
        for r in tr.requests:
            counts[r.tenant] += 1
        # alpha has half the total weight: roughly twice beta's share.
        assert counts["alpha"] > counts["beta"]
        assert counts["alpha"] / tr.n_requests == pytest.approx(0.5, abs=0.12)

    def test_deterministic(self):
        arrivals = poisson_arrivals(20, 50.0, seed=2)
        a = synthesize_tenant_trace(self.specs(), arrivals, scale=0.004, seed=2)
        b = synthesize_tenant_trace(self.specs(), arrivals, scale=0.004, seed=2)
        assert a.requests == b.requests

    def test_reorder_policy_changes_stream(self):
        arrivals = [0.01 * i for i in range(30)]
        spec_orig = [TenantSpec("x", "movies-T2", policy="original")]
        spec_ggr = [TenantSpec("x", "movies-T2", policy="ggr")]
        a = synthesize_tenant_trace(spec_orig, arrivals, scale=0.004, seed=0)
        b = synthesize_tenant_trace(spec_ggr, arrivals, scale=0.004, seed=0)
        assert [r.prompt for r in a.requests] != [r.prompt for r in b.requests]
        # Same prompt *set* per cycle: reordering only permutes rows/fields.
        assert len({r.prompt for r in a.requests}) == len(
            {r.prompt for r in b.requests}
        )

    def test_validation(self):
        with pytest.raises(ServingError):
            synthesize_tenant_trace([], [0.0])
        with pytest.raises(ServingError):
            synthesize_tenant_trace(
                [TenantSpec("a", "movies-T1"), TenantSpec("a", "movies-T1")],
                [0.0],
            )
        with pytest.raises(ServingError):
            TenantSpec("a", "movies-T1", weight=0.0)


class TestTraceRequestOutputLenTypes:
    def test_non_integer_output_len_rejected(self):
        with pytest.raises(ServingError):
            TraceRequest(0.0, "p", output_len=2.5)
        with pytest.raises(ServingError):
            TraceRequest(0.0, "p", output_len=True)

    def test_malformed_trace_json_output_len(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"name": "t", "metadata": {}, "requests": '
            '[{"arrival_s": 0.0, "prompt": "p", "output_len": 2.5}]}'
        )
        with pytest.raises(ServingError):
            WorkloadTrace.load(str(path))


class TestTraceJSONVersioning:
    """Satellite: versioned trace JSON with clean ReproError failures."""

    def full_trace(self):
        return WorkloadTrace(
            [
                TraceRequest(
                    0.25,
                    "prompt one",
                    tenant="acme",
                    job="etl-7",
                    output_text="the answer",
                ),
                TraceRequest(0.5, "prompt two", tenant="beta", output_len=9),
            ],
            name="versioned",
            metadata={"source": "unit", "nested": {"k": [1, 2]}},
        )

    def test_version_stamped(self):
        import json

        d = json.loads(self.full_trace().to_json())
        assert d["version"] == WorkloadTrace.FORMAT_VERSION == 1

    def test_round_trip_preserves_all_fields(self, tmp_path):
        tr = self.full_trace()
        path = tmp_path / "v.json"
        tr.save(str(path))
        back = WorkloadTrace.load(str(path))
        assert back.name == tr.name
        assert back.metadata == tr.metadata
        assert back.requests == tr.requests
        assert back.requests[0].job == "etl-7"
        assert back.requests[0].tenant == "acme"
        assert back.requests[0].output_text == "the answer"
        assert back.requests[1].output_len == 9

    def test_unversioned_payload_reads_as_v1(self):
        import json

        d = json.loads(self.full_trace().to_json())
        del d["version"]
        back = WorkloadTrace.from_json(json.dumps(d))
        assert back.requests == self.full_trace().requests

    def test_future_version_rejected(self):
        with pytest.raises(ServingError, match="newer than this build"):
            WorkloadTrace.from_json('{"version": 99, "requests": []}')

    @pytest.mark.parametrize(
        "payload",
        [
            '{"version": "two", "requests": []}',
            '{"version": 0, "requests": []}',
            '{"version": 1}',
            "[1, 2, 3]",
            "not json at all",
            '{"version": 1, "requests": [{"prompt": "x"}]}',
        ],
    )
    def test_malformed_payloads_raise_repro_error(self, payload):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            WorkloadTrace.from_json(payload)

    def test_load_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 1, "requests": 7}')
        with pytest.raises(ServingError):
            WorkloadTrace.load(str(path))


class TestMakeArrivalsErrors:
    """Regression: an unknown process name fails with the valid choices in
    the message, as a ReproError (not KeyError)."""

    def test_unknown_process_lists_choices(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError) as exc_info:
            make_arrivals("fractal", 10, 5.0)
        msg = str(exc_info.value)
        for name in ARRIVAL_PROCESSES:
            assert name in msg
