"""Cross-package integration tests: the full pipeline end to end.

Each test exercises several subsystems together the way a downstream user
would — these are the paths the examples and experiments rely on.
"""

import pytest

from repro.accuracy.judge import JUDGES, SimulatedJudge
from repro.bench.queries import FILTER_PROMPTS, RAG_PROMPTS
from repro.core.partitioned import partitioned_reorder
from repro.core.refine import refine
from repro.core.reorder import reorder
from repro.data import build_dataset
from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig
from repro.llm.pricing import APICacheSimulator, cost_of, openai_gpt4o_mini
from repro.llm.prompts import build_prompt
from repro.llm.server import BatchInferenceServer
from repro.llm.tokenizer import HashTokenizer
from repro.rag import Retriever
from repro.relational import Database, LLMRuntime


class TestSQLPipeline:
    def test_filter_query_returns_ground_truth_subset(self):
        ds = build_dataset("movies", scale=0.004, seed=2)
        truth = {
            ds.table.column("movietitle")[i]
            for i in range(ds.n_rows)
            if ds.labels[i] == "Yes"
        }

        def oracle(query, cells, row_id):
            return ds.labels[row_id]

        db = Database(runtime=LLMRuntime(policy="ggr", answerer=oracle))
        db.register("movies", ds.table, fds=ds.fds)
        q = FILTER_PROMPTS["movies"].replace("'", "''")
        out = db.sql(
            f"SELECT movietitle FROM movies WHERE LLM('{q}', "
            "movieinfo, reviewcontent, movietitle) = 'Yes'"
        )
        assert set(out.column("movietitle")) == truth

    def test_reordering_policies_agree_on_results(self):
        """The core semantic guarantee, end to end: every policy produces
        identical query output."""
        ds = build_dataset("products", scale=0.004, seed=2)

        def oracle(query, cells, row_id):
            return ds.labels[row_id]

        results = {}
        for policy in ("original", "fixed_stats", "ggr"):
            db = Database(runtime=LLMRuntime(policy=policy, answerer=oracle))
            db.register("products", ds.table, fds=ds.fds)
            out = db.sql(
                "SELECT id FROM products WHERE LLM('sentiment?', text) = 'POSITIVE'"
            )
            results[policy] = out.column("id")
        assert results["original"] == results["fixed_stats"] == results["ggr"]


class TestRAGToServing:
    def test_retrieval_reorder_serve(self):
        ds = build_dataset("fever", scale=0.004, seed=1)
        retriever = Retriever(ds.corpus)
        table = retriever.retrieve_table(
            ds.questions[:40], k=4, question_field="claim", context_prefix="evidence"
        )
        result = reorder(table.to_reorder_table(), "ggr")
        client = SimulatedLLMClient()
        prompts = [build_prompt(RAG_PROMPTS["fever"], r.cells) for r in result.schedule.rows]
        batch = client.generate(prompts, output_lens=[3] * len(prompts))
        assert batch.prefix_hit_rate > 0.2
        assert batch.total_seconds > 0


class TestScheduleToPricing:
    def test_reordered_trace_is_cheaper(self):
        # FEVER prompts (~1.3k tokens) clear the provider's 1024-token
        # caching minimum; shorter datasets get no hits for either policy.
        ds = build_dataset("fever", scale=0.004, seed=0)
        tok = HashTokenizer()
        pricing = openai_gpt4o_mini()
        costs = {}
        for policy in ("original", "ggr"):
            res = reorder(ds.table.to_reorder_table(), policy, fds=ds.fds)
            sim = APICacheSimulator(pricing)
            usages = [
                sim.process(tok.encode(build_prompt("q", r.cells)), output_tokens=2)
                for r in res.schedule.rows
            ]
            costs[policy] = cost_of(usages, pricing).total
        assert costs["ggr"] < costs["original"]


class TestJudgesThroughRuntime:
    def test_accuracy_gap_flows_through_operator(self):
        ds = build_dataset("fever", scale=0.004, seed=0)
        judge = SimulatedJudge(
            JUDGES["llama3-8b"], ds.name, ds.labels, ds.label_domain, ds.key_field
        )
        from repro.relational.expressions import LLMExpr

        acc = {}
        for policy in ("original", "ggr"):
            rt = LLMRuntime(policy=policy, fds=ds.fds, answerer=judge.answerer)
            answers = rt.execute(ds.table, LLMExpr(RAG_PROMPTS["fever"], ("*",)))
            graded = judge.grade(answers)
            acc[policy] = sum(graded) / len(graded)
        assert acc["ggr"] > acc["original"]  # the FEVER/8B effect


class TestPartitionedThroughServer:
    def test_partitioned_schedule_served_by_server(self):
        ds = build_dataset("movies", scale=0.004, seed=0)
        part = partitioned_reorder(ds.table.to_reorder_table(), 4, fds=ds.fds)
        server = BatchInferenceServer(
            engine_config=EngineConfig(max_batch_size=16)
        )
        prompts = [build_prompt("classify", r.cells) for r in part.schedule.rows]
        server.submit_job("etl", prompts, output_lens=[2] * len(prompts))
        assert server.job("etl").hit_rate > 0.3

    def test_refine_then_serve_not_slower(self):
        ds = build_dataset("beer", scale=0.002, seed=0)
        rt = ds.table.to_reorder_table()
        base = reorder(rt, "ggr", fds=ds.fds)
        refined = refine(base.schedule, table=rt, time_limit_s=1.0)
        assert refined.phc_after >= base.exact_phc
