"""Tests for the SQL front-end: lexer, parser, planner, execution of the
paper's example query shapes."""

import pytest

from repro.errors import SQLError
from repro.relational import Database, LLMRuntime, Table
from repro.relational.expressions import Cmp, Col, IsNotNull, Lit, LLMExpr
from repro.relational.sql import parse_sql, plan_sql, tokenize
from repro.relational.sql.nodes import AggCall, Star


def make_db(answerer=None):
    rt = LLMRuntime(answerer=answerer) if answerer else LLMRuntime()
    db = Database(runtime=rt)
    db.register(
        "movies",
        Table(
            {
                "movietitle": ["Up", "Alien", "Coco"],
                "reviewcontent": ["fun for kids", "scary", "family friendly"],
                "rating": [90, 80, 95],
            }
        ),
    )
    db.register(
        "reviews",
        Table({"asin": [1, 1, 2], "review": ["good", "bad", "fine"]}),
    )
    db.register(
        "product",
        Table({"pasin": [1, 2], "description": ["desc one", "desc two"]}),
    )
    return db


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("SELECT a FROM t WHERE b = 'x'")
        kinds = [t.kind for t in toks]
        assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "KEYWORD",
                         "IDENT", "SYMBOL", "STRING", "EOF"]

    def test_escaped_quote_in_string(self):
        toks = tokenize("SELECT 'it''s'")
        assert toks[1].value == "it's"

    def test_quoted_identifier_with_slash(self):
        toks = tokenize('SELECT "beer/beerId" FROM beer')
        assert toks[1] == toks[1].__class__("IDENT", "beer/beerId", toks[1].pos)

    def test_unterminated_string(self):
        with pytest.raises(SQLError):
            tokenize("SELECT 'oops")

    def test_unexpected_char(self):
        with pytest.raises(SQLError):
            tokenize("SELECT a ; b")

    def test_numbers_and_negative(self):
        toks = tokenize("LIMIT -12")
        assert toks[1].kind == "NUMBER" and toks[1].value == "-12"


class TestParser:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a, b AS bee FROM t")
        assert stmt.source.name == "t"
        assert stmt.items[1].alias == "bee"

    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, Star)

    def test_where_tree(self):
        stmt = parse_sql("SELECT a FROM t WHERE a = 1 AND NOT b = 'x' OR c > 2")
        assert stmt.where is not None

    def test_null_comparison_becomes_is_not_null(self):
        stmt = parse_sql("SELECT a FROM t WHERE support_response <> NULL")
        assert isinstance(stmt.where, IsNotNull)

    def test_is_not_null(self):
        stmt = parse_sql("SELECT a FROM t WHERE b IS NOT NULL")
        assert isinstance(stmt.where, IsNotNull)

    def test_llm_call(self):
        stmt = parse_sql("SELECT LLM('Summarize: ', pr.*) FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, LLMExpr)
        assert expr.query == "Summarize: "
        assert expr.fields == ("*",)

    def test_llm_with_fields(self):
        stmt = parse_sql("SELECT LLM('q', a, b) FROM t")
        assert stmt.items[0].expr.fields == ("a", "b")

    def test_llm_requires_string_prompt(self):
        with pytest.raises(SQLError):
            parse_sql("SELECT LLM(a, b) FROM t")

    def test_llm_field_args_must_be_columns(self):
        with pytest.raises(SQLError):
            parse_sql("SELECT LLM('q', 1) FROM t")

    def test_aggregate(self):
        stmt = parse_sql("SELECT AVG(LLM('q', a)) AS s FROM t")
        agg = stmt.items[0].expr
        assert isinstance(agg, AggCall) and agg.fn == "AVG"
        assert isinstance(agg.arg, LLMExpr)

    def test_join_chain(self):
        stmt = parse_sql("SELECT a FROM r JOIN p ON r.asin = p.asin")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].left_col == "r.asin"

    def test_subquery_in_from(self):
        stmt = parse_sql(
            "SELECT LLM('Summarize: ', pr.*) FROM ("
            "SELECT review, description FROM reviews r JOIN product p ON r.asin = p.pasin"
            ") AS pr"
        )
        assert stmt.source.subquery is not None
        assert stmt.source.alias == "pr"

    def test_group_by_and_limit(self):
        stmt = parse_sql("SELECT a, COUNT(b) FROM t GROUP BY a LIMIT 5")
        assert stmt.group_by == ["a"] and stmt.limit == 5

    def test_unknown_function(self):
        with pytest.raises(SQLError):
            parse_sql("SELECT MAGIC(a) FROM t")

    def test_trailing_garbage(self):
        with pytest.raises(SQLError):
            parse_sql("SELECT a FROM t extra stuff ( ")


class TestExecution:
    def test_select_star(self):
        db = make_db()
        out = db.sql("SELECT * FROM movies")
        assert out.n_rows == 3 and out.fields == ("movietitle", "reviewcontent", "rating")

    def test_projection_with_alias(self):
        db = make_db()
        out = db.sql("SELECT movietitle AS title FROM movies")
        assert out.fields == ("title",)

    def test_where_filter(self):
        db = make_db()
        out = db.sql("SELECT movietitle FROM movies WHERE rating >= 90")
        assert out.column("movietitle") == ["Up", "Coco"]

    def test_limit(self):
        db = make_db()
        assert db.sql("SELECT * FROM movies LIMIT 2").n_rows == 2

    def test_llm_filter_query(self):
        def answerer(query, cells, row_id):
            vals = {c.field: c.value for c in cells}
            return "Yes" if "kids" in vals.get("reviewcontent", "") or "family" in vals.get("reviewcontent", "") else "No"

        db = make_db(answerer)
        out = db.sql(
            "SELECT movietitle FROM movies "
            "WHERE LLM('Suitable for kids?', reviewcontent, movietitle) = 'Yes'"
        )
        assert out.column("movietitle") == ["Up", "Coco"]

    def test_llm_projection_query(self):
        def answerer(query, cells, row_id):
            return f"summary-{row_id}"

        db = make_db(answerer)
        out = db.sql("SELECT LLM('Summarize', reviewcontent) AS s FROM movies")
        # Answers must be scattered back to original row order.
        assert out.column("s") == ["summary-0", "summary-1", "summary-2"]

    def test_aggregation_of_llm_scores(self):
        def answerer(query, cells, row_id):
            return str(row_id + 3)  # 3, 4, 5

        db = make_db(answerer)
        out = db.sql("SELECT AVG(LLM('Rate 1-5', reviewcontent)) AS s FROM movies")
        assert out.column("s") == [4.0]

    def test_join_and_subquery_paper_shape(self):
        def answerer(query, cells, row_id):
            return "sum"

        db = make_db(answerer)
        out = db.sql(
            "SELECT LLM('Summarize: ', pr.*) FROM ("
            "SELECT review, description FROM reviews r JOIN product p ON r.asin = p.pasin"
            ") AS pr"
        )
        assert out.n_rows == 3  # join fanout: asin 1 twice, asin 2 once

    def test_group_by(self):
        db = make_db()
        out = db.sql("SELECT asin, COUNT(review) AS n FROM reviews GROUP BY asin")
        got = dict(zip(out.column("asin"), out.column("n")))
        assert got == {1: 2, 2: 1}

    def test_unknown_table(self):
        db = make_db()
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            db.sql("SELECT * FROM ghosts")

    def test_mixed_agg_and_plain_rejected(self):
        db = make_db()
        with pytest.raises(SQLError):
            db.sql("SELECT movietitle, AVG(rating) FROM movies")
