"""Tests for expression evaluation."""

import pytest

from repro.errors import SchemaError, SQLError
from repro.relational.expressions import (
    And,
    Cmp,
    Col,
    ExecutionContext,
    IsNotNull,
    Lit,
    LLMExpr,
    Not,
    Or,
)
from repro.relational.table import Table


@pytest.fixture
def t():
    return Table({"a": [1, 2, 3], "b": ["x", "y", None], "q.c": [7, 8, 9]})


class TestBasic:
    def test_col(self, t):
        assert Col("a").eval(t) == [1, 2, 3]

    def test_col_qualified_resolution(self):
        t = Table({"c": [1, 2]})
        assert Col("alias.c").eval(t) == [1, 2]

    def test_col_unknown(self, t):
        with pytest.raises(SchemaError):
            Col("zz").eval(t)

    def test_lit(self, t):
        assert Lit(5).eval(t) == [5, 5, 5]

    def test_cmp_eq(self, t):
        assert Cmp("=", Col("a"), Lit(2)).eval(t) == [False, True, False]

    def test_cmp_ordering(self, t):
        assert Cmp(">=", Col("a"), Lit(2)).eval(t) == [False, True, True]

    def test_cmp_bad_op(self):
        with pytest.raises(SQLError):
            Cmp("~", Col("a"), Lit(1))

    def test_boolean_combinators(self, t):
        gt1 = Cmp(">", Col("a"), Lit(1))
        lt3 = Cmp("<", Col("a"), Lit(3))
        assert And(gt1, lt3).eval(t) == [False, True, False]
        assert Or(gt1, lt3).eval(t) == [True, True, True]
        assert Not(gt1).eval(t) == [True, False, False]

    def test_is_not_null(self, t):
        assert IsNotNull(Col("b")).eval(t) == [True, True, False]

    def test_referenced_columns(self, t):
        e = And(Cmp("=", Col("a"), Lit(1)), IsNotNull(Col("b")))
        assert e.referenced_columns(t) == {"a", "b"}


class TestLLMExpr:
    def test_requires_runtime(self, t):
        with pytest.raises(SQLError):
            LLMExpr("q", ("a",)).eval(t)
        with pytest.raises(SQLError):
            LLMExpr("q", ("a",)).eval(t, ExecutionContext())

    def test_star_expansion(self, t):
        e = LLMExpr("q", ("*",))
        assert e.expanded_fields(t) == ["a", "b", "q.c"]

    def test_explicit_fields_preserved_and_deduped(self, t):
        e = LLMExpr("q", ("b", "a", "b"))
        assert e.expanded_fields(t) == ["b", "a"]

    def test_table_star(self, t):
        e = LLMExpr("q", ("pr.*",))
        assert e.expanded_fields(t) == ["a", "b", "q.c"]
