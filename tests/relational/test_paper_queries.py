"""The paper's verbatim example queries must parse and execute."""

import pytest

from repro.relational import Database, LLMRuntime, Table


def make_runtime(answer="Yes"):
    return LLMRuntime(answerer=lambda q, cells, rid: answer)


class TestSection1Example:
    """The customer-tickets query from the paper's introduction."""

    SQL = (
        "SELECT user_id, request, support_response, "
        "LLM('Did {support_response} address {request}?', support_response, request) "
        "AS success "
        "FROM customer_tickets "
        "WHERE support_response <> NULL"
    )

    def make_db(self):
        db = Database(runtime=make_runtime())
        db.register(
            "customer_tickets",
            Table(
                {
                    "user_id": [1, 2, 3],
                    "request": ["refund", "reset password", "cancel"],
                    "support_response": ["done", None, "sorry"],
                }
            ),
        )
        return db

    def test_parses_and_executes(self):
        out = self.make_db().sql(self.SQL)
        assert out.fields == ("user_id", "request", "support_response", "success")
        # NULL-response row filtered before the LLM sees it.
        assert out.column("user_id") == [1, 3]
        assert out.column("success") == ["Yes", "Yes"]


class TestSection31Example:
    """The summarization-over-join query from §3.1."""

    SQL = (
        "SELECT LLM('Summarize: ', pr.*) FROM ("
        "SELECT review, rating, description "
        "FROM reviews r JOIN product p ON r.asin = p.asin"
        ") AS pr"
    )

    def test_parses_and_executes(self):
        db = Database(runtime=make_runtime("summary"))
        db.register(
            "reviews",
            Table({"asin": [10, 10, 20], "review": ["a", "b", "c"], "rating": [5, 3, 4]}),
        )
        db.register(
            "product",
            Table({"asin": [10, 20], "description": ["widget", "gadget"]}),
        )
        out = db.sql(self.SQL)
        assert out.n_rows == 3
        assert out.column(out.fields[0]) == ["summary"] * 3


class TestAppendixAMultiInvocation:
    """Appendix A's nested filter-then-project query shape."""

    SQL = (
        "SELECT LLM('Given the information about a movie, summarize the good "
        "qualities that led to a favorable rating.', reviewtype, reviewcontent, "
        "movieinfo, genres) AS summary "
        "FROM movies "
        "WHERE LLM('sentiment?', reviewcontent) = 'NEGATIVE'"
    )

    def test_two_llm_calls_compose(self):
        calls = []

        def answerer(q, cells, rid):
            calls.append(q)
            return "NEGATIVE" if q == "sentiment?" else "good plot"

        db = Database(runtime=LLMRuntime(answerer=answerer))
        db.register(
            "movies",
            Table(
                {
                    "reviewtype": ["Fresh", "Rotten"],
                    "reviewcontent": ["meh", "bad"],
                    "movieinfo": ["i1", "i2"],
                    "genres": ["g1", "g2"],
                }
            ),
        )
        out = db.sql(self.SQL)
        assert out.column("summary") == ["good plot", "good plot"]
        assert "sentiment?" in calls
