"""Tests for the LLM-aware SQL optimizer: plan rewrites, explain output,
gating, and the runtime-level dedup / answer memo."""

import pytest

from repro.errors import SchemaError
from repro.llm.costmodel import estimate_tokens
from repro.relational import Database, LLMRuntime, OptimizerConfig, Table
from repro.relational.expressions import And, Cmp, Col, Lit, LLMExpr
from repro.relational.llm_functions import LLMCallStats
from repro.relational.operators import Aggregate, Filter, Limit, Project, TableSource
from repro.relational.optimizer import (
    contains_llm,
    estimate_llm_tokens_per_row,
    explain_plan,
    find_llm_exprs,
    optimize_plan,
    split_conjuncts,
    sql_opt_enabled,
)
from repro.relational.sql import plan_sql


def movie_table():
    return Table(
        {
            "movietitle": ["Up", "Alien", "Coco", "Up2"],
            "reviewcontent": ["fun for kids", "scary", "kid friendly", "fun for kids"],
            "reviewtype": ["Fresh", "Rotten", "Fresh", "Fresh"],
            "rating": [90, 80, 95, 91],
        }
    )


def cells_answerer(query, cells, row_id):
    """Deterministic function of (query, cells) — dedup/memo safe."""
    vals = {c.field: c.value for c in cells}
    if "kid" in query:
        return "Yes" if "kid" in vals.get("reviewcontent", "") else "No"
    return "Yes" if vals.get("reviewtype") == "Fresh" else "No"


def make_db(opt=True, answerer=cells_answerer):
    runtime = LLMRuntime(answerer=answerer, dedup=opt, memo=opt)
    db = Database(runtime=runtime, optimizer_config=OptimizerConfig(enabled=opt))
    db.register("movies", movie_table())
    return db


class TestExpressionUtils:
    def test_contains_and_find_llm(self):
        e = And(Cmp("=", Col("a"), Lit(1)), Cmp("=", LLMExpr("q", ("b",)), Lit("Yes")))
        assert contains_llm(e)
        assert not contains_llm(e.left)
        assert [x.query for x in find_llm_exprs(e)] == ["q"]

    def test_split_conjuncts_flattens_left_to_right(self):
        a = Cmp("=", Col("a"), Lit(1))
        b = Cmp(">", Col("b"), Lit(2))
        c = Cmp("<", Col("c"), Lit(3))
        assert split_conjuncts(And(And(a, b), c)) == [a, b, c]
        assert split_conjuncts(a) == [a]

    def test_token_estimate_scales_with_fields_and_stats(self):
        short = estimate_llm_tokens_per_row(LLMExpr("q", ("a",)), {"a": 10.0})
        long = estimate_llm_tokens_per_row(LLMExpr("q", ("a",)), {"a": 500.0})
        assert long > short
        # No stats: falls back to the configured default cell width.
        assert estimate_llm_tokens_per_row(LLMExpr("q", ("a",))) > 0
        # Star with no schema uses the default field count.
        assert estimate_llm_tokens_per_row(LLMExpr("q", ("*",))) > 0


class TestRewrites:
    SQL = (
        "SELECT movietitle FROM movies WHERE "
        "LLM('is this movie suitable for kids? answer only with Yes or No "
        "after considering all the fields', reviewcontent, movietitle) = 'Yes' "
        "AND rating >= 90 AND LLM('Fresh review? kid', reviewtype) = 'Yes'"
    )

    def optimized(self, sql=None, **cfg):
        db = make_db()
        config = OptimizerConfig(enabled=True, **cfg)
        return optimize_plan(plan_sql(sql or self.SQL), catalog=db.catalog, config=config)

    def test_non_llm_filters_pushed_below_llm(self):
        out = self.optimized()
        assert "split_where_conjuncts" in out.fired
        assert "pushdown_non_llm_filters" in out.fired
        # Walk the filter chain bottom-up: non-LLM first, then LLM.
        chain = []
        node = out.plan
        while node is not None:
            if isinstance(node, Filter):
                chain.append(contains_llm(node.predicate))
            node = getattr(node, "child", None)
        kinds = list(reversed(chain))  # execution order
        assert kinds == sorted(kinds)  # False (non-LLM) strictly before True
        assert kinds.count(False) == 1 and kinds.count(True) == 2

    def test_llm_predicates_ordered_cheapest_first(self):
        out = self.optimized()
        assert "reorder_llm_predicates" in out.fired
        llm_filters = []
        node = out.plan
        while node is not None:
            if isinstance(node, Filter) and contains_llm(node.predicate):
                llm_filters.append(find_llm_exprs(node.predicate)[0])
            node = getattr(node, "child", None)
        # Bottom of the chain executes first: the cheap single-short-field
        # predicate must run before the two-long-field one.
        assert llm_filters[-1].fields == ("reviewtype",)
        assert llm_filters[0].fields == ("reviewcontent", "movietitle")

    def test_limit_pushed_below_project(self):
        out = self.optimized("SELECT LLM('summarize', reviewcontent) AS s FROM movies LIMIT 2")
        assert "push_limit_below_project" in out.fired
        assert isinstance(out.plan, Project)
        assert isinstance(out.plan.child, Limit)

    def test_limit_not_pushed_below_aggregate(self):
        out = self.optimized("SELECT AVG(rating) AS r FROM movies LIMIT 1")
        assert "push_limit_below_project" not in out.fired
        assert isinstance(out.plan, Limit)
        assert isinstance(out.plan.child, Aggregate)

    def test_rewrite_toggles(self):
        assert "split_where_conjuncts" not in self.optimized(split_conjuncts=False).fired
        no_push = self.optimized(pushdown_non_llm=False)
        assert "pushdown_non_llm_filters" not in no_push.fired
        assert "reorder_llm_predicates" not in no_push.fired
        assert "reorder_llm_predicates" not in self.optimized(
            reorder_llm_predicates=False
        ).fired
        assert "push_limit_below_project" not in self.optimized(
            "SELECT LLM('q', reviewcontent) AS s FROM movies LIMIT 2",
            limit_pushdown=False,
        ).fired

    def test_input_plan_not_mutated(self):
        plan = plan_sql(self.SQL)
        before = repr(plan)
        optimize_plan(plan, config=OptimizerConfig(enabled=True))
        assert repr(plan) == before

    def test_disabled_returns_plan_unchanged(self):
        plan = plan_sql(self.SQL)
        out = optimize_plan(plan, config=OptimizerConfig(enabled=False))
        assert out.plan is plan
        assert not out.enabled and out.fired == []

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_OPT", "0")
        assert not sql_opt_enabled()
        assert not optimize_plan(plan_sql(self.SQL)).enabled
        monkeypatch.setenv("REPRO_SQL_OPT", "1")
        assert sql_opt_enabled()
        assert optimize_plan(plan_sql(self.SQL)).enabled

    def test_optimized_execution_matches_reference(self):
        out_opt = make_db(opt=True).sql(self.SQL)
        out_ref = make_db(opt=False).sql(self.SQL)
        assert out_opt.fields == out_ref.fields
        for f in out_ref.fields:
            assert out_opt.column(f) == out_ref.column(f)


class TestExplain:
    def test_explain_shows_rewrites_and_token_estimates(self):
        db = make_db()
        text = db.explain(TestRewrites.SQL)
        assert "rewrites:" in text
        assert "pushdown_non_llm_filters" in text
        assert "Filter[LLM]" in text
        assert "est LLM tok" in text
        assert "CatalogScan(movies)" in text
        # Non-LLM filter rendered below (deeper than) every LLM filter.
        lines = text.splitlines()
        llm_depths = [
            len(l) - len(l.lstrip()) for l in lines if l.lstrip().startswith("Filter[LLM]")
        ]
        non_llm_depths = [
            len(l) - len(l.lstrip())
            for l in lines
            if l.lstrip().startswith("Filter ") and "LLM" not in l.split("--")[0]
        ]
        assert non_llm_depths and llm_depths
        assert min(non_llm_depths) > max(llm_depths)

    def test_explain_disabled_notes_oracle_mode(self):
        db = Database(optimizer_config=OptimizerConfig(enabled=False))
        db.register("movies", movie_table())
        text = db.explain("SELECT movietitle FROM movies WHERE rating >= 90")
        assert "optimizer disabled" in text

    def test_explain_plan_without_catalog(self):
        plan = Limit(
            child=Project(
                child=Filter(
                    child=TableSource(movie_table()),
                    predicate=Cmp("=", LLMExpr("q", ("reviewcontent",)), Lit("Yes")),
                ),
                items=[(Col("movietitle"), "t")],
            ),
            n=2,
        )
        text = explain_plan(plan, config=OptimizerConfig(enabled=True))
        assert "TableSource" in text and "~4 rows" in text

    def test_explain_join_and_group_by(self):
        db = Database()
        db.register("r", Table({"asin": [1, 1, 2], "review": ["a", "b", "c"]}))
        db.register("p", Table({"pasin": [1, 2], "description": ["d1", "d2"]}))
        text = db.explain(
            "SELECT asin, COUNT(review) AS n FROM r JOIN p ON r.asin = p.pasin "
            "GROUP BY asin"
        )
        assert "Join(r.asin = p.pasin)" in text
        assert "Aggregate[COUNT(review) AS n] GROUP BY asin" in text


class TestRuntimeDedup:
    def duplicated(self, per_group=4):
        rows = []
        for g in range(3):
            for _ in range(per_group):
                rows.append({"grp": f"group-{g}", "note": f"note {g}"})
        return Table.from_records(rows)

    def test_dedup_solves_only_distinct_rows(self):
        seen = []

        def answerer(q, cells, rid):
            seen.append(rid)
            return dict((c.field, c.value) for c in cells)["grp"]

        rt = LLMRuntime(answerer=answerer, dedup=True, memo=False)
        table = self.duplicated()
        out = rt.execute(table, LLMExpr("q", ("grp", "note")))
        assert len(seen) == 3
        assert out == table.column("grp")
        call = rt.calls[0]
        assert call.n_rows == 12 and call.n_distinct == 3
        assert call.dedup_saved_prompt_tokens > 0
        assert call.scheduled_prompt_tokens > 0

    def test_dedup_off_solves_every_row(self):
        seen = []
        rt = LLMRuntime(
            answerer=lambda q, c, r: seen.append(r) or "x", dedup=False, memo=False
        )
        rt.execute(self.duplicated(), LLMExpr("q", ("grp",)))
        assert len(seen) == 12
        assert rt.calls[0].n_distinct == 12
        assert rt.calls[0].dedup_saved_prompt_tokens == 0

    def test_memo_hits_across_calls(self):
        seen = []

        def answerer(q, cells, rid):
            seen.append(rid)
            return "A"

        rt = LLMRuntime(answerer=answerer, dedup=True, memo=True)
        table = self.duplicated()
        rt.execute(table, LLMExpr("q", ("grp",)))
        first = len(seen)
        out = rt.execute(table, LLMExpr("q", ("grp",)))
        assert len(seen) == first  # second call fully memoized
        assert out == ["A"] * 12
        assert rt.calls[1].memo_hits == 12
        assert rt.calls[1].n_distinct == 0
        assert rt.calls[1].engine_result is None

    def test_memo_distinguishes_queries_and_fields(self):
        seen = []
        rt = LLMRuntime(
            answerer=lambda q, c, r: seen.append((q, r)) or "x", dedup=True, memo=True
        )
        table = self.duplicated()
        rt.execute(table, LLMExpr("q1", ("grp",)))
        rt.execute(table, LLMExpr("q2", ("grp",)))  # different query
        rt.execute(table, LLMExpr("q1", ("grp", "note")))  # different fields
        assert rt.calls[1].memo_hits == 0
        assert rt.calls[2].memo_hits == 0

    def test_sql_level_dedup_through_database(self):
        """A WHERE LLM(...) filter re-asked in the SELECT list hits the
        memo: the engine is consulted once per distinct row overall."""
        seen = []

        def answerer(q, cells, rid):
            seen.append(rid)
            return "Yes"

        db = make_db(answerer=answerer)
        out = db.sql(
            "SELECT LLM('kid?', reviewcontent) AS a FROM movies "
            "WHERE LLM('kid?', reviewcontent) = 'Yes'"
        )
        # 4 rows, 3 distinct reviewcontent values; the projection re-asks
        # the same (query, cells) and is served from the memo.
        assert len(seen) == 3
        assert out.n_rows == 4
        assert db.runtime.calls[1].memo_hits == 4

    def test_empty_table_still_works(self):
        rt = LLMRuntime(dedup=True, memo=True)
        assert rt.execute(Table({"a": []}), LLMExpr("q", ("a",))) == []
        assert rt.calls[0].n_rows == 0 and rt.calls[0].n_distinct == 0


class TestOverallPHRFallback:
    def test_solver_only_runs_report_schedule_phr(self):
        rt = LLMRuntime(policy="ggr", dedup=False, memo=False)
        table = Table(
            {
                "grp": ["a"] * 6 + ["b"] * 6,
                "text": [f"unique text {i}" for i in range(12)],
            }
        )
        rt.execute(table, LLMExpr("q", ("*",)))
        assert rt.calls[0].engine_result is None
        assert rt.calls[0].schedule_phr > 0
        assert rt.overall_phr == pytest.approx(rt.calls[0].schedule_phr)

    def test_weighted_mix_of_engine_and_solver_calls(self):
        from repro.llm.client import SimulatedLLMClient

        table = Table({"grp": ["a", "a", "b"], "text": ["t1", "t2", "t3"]})
        rt = LLMRuntime(
            client=SimulatedLLMClient(), policy="ggr", dedup=False, memo=False
        )
        rt.execute(table, LLMExpr("q", ("*",)))
        engine_phr = rt.overall_phr
        # Append a synthetic engine-less call with a perfect schedule PHR:
        # the rollup must move toward it, weighted by scheduled tokens.
        rt.calls.append(
            LLMCallStats(
                query="x",
                n_rows=3,
                policy="ggr",
                solver_seconds=0.0,
                exact_phc=0,
                schedule_phr=1.0,
                scheduled_prompt_tokens=10_000,
            )
        )
        assert engine_phr < rt.overall_phr < 1.0

    def test_no_calls_is_zero(self):
        assert LLMRuntime().overall_phr == 0.0


class TestAggregateAliasCollision:
    def test_group_by_alias_collision_rejected_at_plan_time(self):
        with pytest.raises(SchemaError):
            plan_sql("SELECT g, COUNT(v) AS g FROM t GROUP BY g")

    def test_duplicate_agg_aliases_rejected_at_plan_time(self):
        with pytest.raises(SchemaError):
            plan_sql("SELECT AVG(v) AS x, SUM(v) AS x FROM t")

    def test_collision_rejected_for_handbuilt_plans(self):
        from repro.relational.expressions import ExecutionContext

        table = Table({"g": ["a", "a", "b", "b"], "v": [1, 2, 3, 4]})
        plan = Aggregate(
            child=TableSource(table),
            aggs=[("COUNT", Col("v"), "g")],
            group_by=["g"],
        )
        with pytest.raises(SchemaError):
            plan.execute(ExecutionContext())

    def test_distinct_alias_still_works(self):
        db = Database()
        db.register("t", Table({"g": ["a", "a", "b", "b"], "v": [1, 2, 3, 4]}))
        out = db.sql("SELECT g, COUNT(v) AS n FROM t GROUP BY g")
        got = dict(zip(out.column("g"), out.column("n")))
        assert got == {"a": 2, "b": 2}


class TestTokenEstimateHelper:
    def test_estimate_tokens(self):
        from repro.errors import ServingError

        assert estimate_tokens(0) == 0
        assert estimate_tokens(-5) == 0
        assert estimate_tokens(1) == 1  # floor of one token for any text
        assert estimate_tokens(400) == 100
        with pytest.raises(ServingError):
            estimate_tokens(100, chars_per_token=0)


class TestAnswerMemoStore:
    """The session (Database)-scoped answer memo store: shared across
    runtimes, bounded, with telemetry."""

    def test_bound_and_evictions(self):
        from repro.relational import AnswerMemoStore

        store = AnswerMemoStore(max_entries=3)
        for i in range(5):
            store.put(("q", ("f",), (str(i),)), f"a{i}")
        assert len(store) == 3
        assert store.evictions == 2
        # FIFO: the two oldest are gone.
        assert store.get(("q", ("f",), ("0",))) is None
        assert store.get(("q", ("f",), ("4",))) == "a4"
        assert store.stats["hits"] == 1 and store.stats["misses"] == 1

    def test_overwrite_does_not_evict(self):
        from repro.relational import AnswerMemoStore

        store = AnswerMemoStore(max_entries=2)
        store.put(("q", ("f",), ("x",)), "a")
        store.put(("q", ("f",), ("x",)), "b")
        assert len(store) == 1 and store.evictions == 0
        assert store.get(("q", ("f",), ("x",))) == "b"

    def test_validation(self):
        from repro.relational import AnswerMemoStore

        with pytest.raises(ValueError):
            AnswerMemoStore(max_entries=0)

    def test_database_scope_shared_across_runtimes(self):
        """Two runtimes attached to one Database store hit each other's
        answers — the memo is session-scoped, not per-runtime."""
        from repro.relational import AnswerMemoStore

        seen = []

        def answerer(q, cells, rid):
            seen.append(rid)
            return cells[0].value.upper()

        store = AnswerMemoStore()
        table = Table({"a": ["x", "y", "x"]})
        rt1 = LLMRuntime(
            answerer=answerer, dedup=True, memo=True, memo_store=store
        )
        rt2 = LLMRuntime(
            answerer=answerer, dedup=True, memo=True, memo_store=store
        )
        assert rt1.execute(table, LLMExpr("q", ("a",))) == ["X", "Y", "X"]
        calls_first = len(seen)
        assert rt2.execute(table, LLMExpr("q", ("a",))) == ["X", "Y", "X"]
        assert len(seen) == calls_first  # fully served from the shared store
        assert rt2.calls[0].memo_hits == 3
        assert store.hits >= 3

    def test_database_adopts_runtime_store_and_reports_stats(self):
        seen = []
        rt = LLMRuntime(
            answerer=lambda q, c, r: seen.append(r) or "Yes",
            dedup=True,
            memo=True,
        )
        db = Database(runtime=rt)
        assert db.answer_memo is rt.memo_store
        db.register("t", Table({"a": ["p", "q"]}))
        db.sql("SELECT LLM('ask', a) AS x FROM t")
        first = len(seen)
        db.sql("SELECT LLM('ask', a) AS x FROM t")
        if rt.memo_enabled:  # REPRO_SQL_OPT=0 disables the memo end to end
            assert len(seen) == first
            assert db.memo_stats["hits"] >= 2
            assert db.memo_stats["entries"] == 2

    def test_database_injected_store_wins(self):
        from repro.relational import AnswerMemoStore

        store = AnswerMemoStore(max_entries=8)
        rt = LLMRuntime(dedup=True, memo=True)
        db = Database(runtime=rt, answer_memo=store)
        assert db.answer_memo is store
        assert rt.memo_store is store
