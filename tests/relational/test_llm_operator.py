"""Integration tests: the LLM operator with reordering + serving simulator."""

import pytest

from repro.core.fd import FunctionalDependencies
from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig
from repro.relational import Database, LLMRuntime, Table
from repro.relational.expressions import LLMExpr


def duplicated_table(n_groups=4, per_group=6):
    rows = []
    for g in range(n_groups):
        for k in range(per_group):
            rows.append(
                {
                    "uid": f"u{g}-{k}",
                    "product_title": f"Widget model {g}",
                    "description": f"A long shared description of widget family {g} " * 3,
                    "text": f"unique review text {g}/{k} with opinions",
                }
            )
    return Table.from_records(rows)


def order_echo_answerer(query, cells, row_id):
    return "ok"


class TestSemanticPreservation:
    def test_outputs_aligned_regardless_of_policy(self):
        table = duplicated_table()

        def answerer(query, cells, row_id):
            return f"row-{row_id}"

        for policy in ("original", "ggr", "fixed_stats"):
            rt = LLMRuntime(policy=policy, answerer=answerer)
            out = rt.execute(table, LLMExpr("q", ("*",)))
            assert out == [f"row-{i}" for i in range(table.n_rows)]

    def test_validate_flag(self):
        rt = LLMRuntime(policy="ggr", validate=True, answerer=order_echo_answerer)
        rt.execute(duplicated_table(), LLMExpr("q", ("*",)))
        assert rt.calls[0].exact_phc > 0


class TestReorderingImprovesServing:
    def test_ggr_beats_original_end_to_end(self):
        # A small KV budget forces eviction, so row grouping (not just the
        # persistent radix cache) must supply the hits — the regime the
        # paper's full-size runs live in.
        table = duplicated_table(n_groups=8, per_group=6)
        times = {}
        phrs = {}
        for policy in ("original", "ggr"):
            rt = LLMRuntime(
                client=SimulatedLLMClient(
                    engine_config=EngineConfig(kv_capacity_tokens=2000, max_batch_size=4)
                ),
                policy=policy,
                answerer=order_echo_answerer,
            )
            rt.execute(table, LLMExpr("Classify this product", ("*",)))
            times[policy] = rt.total_engine_seconds
            phrs[policy] = rt.overall_phr
        assert phrs["ggr"] > phrs["original"]
        assert times["ggr"] < times["original"]

    def test_no_cache_slowest(self):
        table = duplicated_table(n_groups=5, per_group=8)
        rt_nc = LLMRuntime(
            client=SimulatedLLMClient(engine_config=EngineConfig(enable_prefix_cache=False)),
            policy="original",
            answerer=order_echo_answerer,
        )
        rt_ggr = LLMRuntime(
            client=SimulatedLLMClient(), policy="ggr", answerer=order_echo_answerer
        )
        expr = LLMExpr("Classify", ("*",))
        rt_nc.execute(table, expr)
        rt_ggr.execute(table, expr)
        assert rt_ggr.total_engine_seconds < rt_nc.total_engine_seconds
        assert rt_nc.overall_phr == 0.0

    def test_fds_help_phc(self):
        table = duplicated_table(n_groups=6, per_group=5)
        fds = FunctionalDependencies.from_groups([["product_title", "description"]])
        out_with = LLMRuntime(policy="ggr", fds=fds, answerer=order_echo_answerer)
        out_without = LLMRuntime(policy="ggr", answerer=order_echo_answerer)
        expr = LLMExpr("q", ("*",))
        out_with.execute(table, expr)
        out_without.execute(table, expr)
        assert out_with.calls[0].exact_phc >= out_without.calls[0].exact_phc


class TestStats:
    def test_call_stats_recorded(self):
        rt = LLMRuntime(client=SimulatedLLMClient(), answerer=order_echo_answerer)
        rt.execute(duplicated_table(), LLMExpr("q1", ("*",)))
        rt.execute(duplicated_table(), LLMExpr("q2", ("text",)))
        assert len(rt.calls) == 2
        assert rt.calls[0].query == "q1"
        assert rt.total_solver_seconds > 0
        assert rt.total_engine_seconds > 0
        assert 0.0 <= rt.overall_phr <= 1.0

    def test_empty_table(self):
        rt = LLMRuntime(answerer=order_echo_answerer)
        out = rt.execute(Table({"a": []}), LLMExpr("q", ("a",)))
        assert out == []

    def test_context_fds_used_when_runtime_has_none(self):
        table = duplicated_table()
        fds = FunctionalDependencies.from_groups([["product_title", "description"]])
        rt = LLMRuntime(policy="ggr", answerer=order_echo_answerer)
        out = rt.execute(table, LLMExpr("q", ("*",)), fds=fds)
        assert len(out) == table.n_rows
