"""Randomized optimizer-equivalence suite.

The unoptimized path (``OptimizerConfig(enabled=False)`` + runtime
dedup/memo off — what ``REPRO_SQL_OPT=0`` selects globally) is the
equivalence oracle: for generated SQL over randomized tables, the
optimized engine must produce *identical* query results while issuing
strictly fewer-or-equal answerer invocations (dedup/memo can only remove
model calls, never add or change them).

The generated answerers are deterministic functions of ``(query, cells)``
— the property every real model has and the dedup/memo rewrites rely on.
"""

import hashlib
import random

import pytest

from repro.relational import Database, LLMRuntime, OptimizerConfig, Table

N_CASES = 24


def _hash01(*key) -> float:
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


def cells_answerer(query, cells, row_id):
    """Deterministic in (query, sorted cells); independent of row order,
    schedule order, and row_id."""
    payload = tuple(sorted((c.field, c.value) for c in cells))
    u = _hash01(query, payload)
    if query.startswith("score"):
        return str(1 + int(u * 5))
    return "Yes" if u < 0.55 else "No"


def random_table(rng: random.Random) -> Table:
    """A table with deliberately heavy value redundancy so dedup has work:
    small domains for every column except the unique id."""
    n = rng.randint(8, 40)
    n_groups = rng.randint(1, 4)
    n_texts = rng.randint(2, 6)
    return Table(
        {
            "id": list(range(n)),
            "grp": [f"g{rng.randrange(n_groups)}" for _ in range(n)],
            "val": [rng.randrange(5) for _ in range(n)],
            "text": [f"shared text body {rng.randrange(n_texts)}" for _ in range(n)],
            "note": [f"note {rng.randrange(3)} padding words" for _ in range(n)],
        }
    )


def random_sql(rng: random.Random) -> str:
    """One SELECT from a small grammar mixing cheap and LLM predicates."""
    llm_preds = [
        "LLM('p1 keep?', text) = 'Yes'",
        "LLM('p2 long question about the row contents?', text, note, grp) = 'Yes'",
        "LLM('p3?', grp) = 'No'",
        "LLM('p4 mid-size?', note, grp) = 'Yes'",
    ]
    cheap_preds = [
        "val >= 2",
        "grp = 'g0'",
        "val < 4",
        "NOT grp = 'g1'",
        "text IS NOT NULL",
    ]
    n_llm = rng.randint(0, 2)
    n_cheap = rng.randint(0, 2)
    preds = rng.sample(llm_preds, n_llm) + rng.sample(cheap_preds, n_cheap)
    rng.shuffle(preds)
    where = f" WHERE {' AND '.join(preds)}" if preds else ""

    shape = rng.randrange(4)
    if shape == 0:
        select = "SELECT id, grp"
    elif shape == 1:
        select = "SELECT LLM('p5 summarize', text, note) AS s, id"
    elif shape == 2:
        select = "SELECT AVG(LLM('score the row', text)) AS s"
    else:
        select = "SELECT *"
    limit = f" LIMIT {rng.randint(1, 12)}" if rng.random() < 0.4 and shape != 2 else ""
    return f"{select} FROM t{where}{limit}"


class CountingAnswerer:
    def __init__(self):
        self.n = 0

    def __call__(self, query, cells, row_id):
        self.n += 1
        return cells_answerer(query, cells, row_id)


def run_one(sql: str, table: Table, opt: bool):
    counter = CountingAnswerer()
    runtime = LLMRuntime(answerer=counter, policy="original", dedup=opt, memo=opt)
    db = Database(runtime=runtime, optimizer_config=OptimizerConfig(enabled=opt))
    db.register("t", table)
    out = db.sql(sql)
    return out, counter.n


def tables_equal(a: Table, b: Table) -> bool:
    if a.fields != b.fields or a.n_rows != b.n_rows:
        return False
    return all(a.column(f) == b.column(f) for f in a.fields)


@pytest.mark.parametrize("case", range(N_CASES))
def test_optimized_matches_oracle(case):
    rng = random.Random(1000 + case)
    table = random_table(rng)
    for _ in range(3):
        sql = random_sql(rng)
        ref, ref_calls = run_one(sql, table, opt=False)
        opt, opt_calls = run_one(sql, table, opt=True)
        assert tables_equal(ref, opt), (
            f"case {case}: optimizer changed the result of {sql!r}:\n"
            f"reference {ref.fields} x {ref.n_rows} vs optimized "
            f"{opt.fields} x {opt.n_rows}"
        )
        assert opt_calls <= ref_calls, (
            f"case {case}: optimizer issued MORE answerer calls "
            f"({opt_calls} > {ref_calls}) for {sql!r}"
        )


def test_dedup_strictly_reduces_calls_on_redundant_table():
    rng = random.Random(7)
    table = random_table(rng)  # heavy redundancy by construction
    sql = "SELECT LLM('p1 keep?', text) AS k FROM t"
    _, ref_calls = run_one(sql, table, opt=False)
    _, opt_calls = run_one(sql, table, opt=True)
    assert opt_calls < ref_calls

    # GGR policy agrees with the original-order policy on outputs.
    counter = CountingAnswerer()
    runtime = LLMRuntime(answerer=counter, policy="ggr", dedup=True, memo=True)
    db = Database(runtime=runtime, optimizer_config=OptimizerConfig(enabled=True))
    db.register("t", table)
    out_ggr = db.sql(sql)
    out_ref, _ = run_one(sql, table, opt=False)
    assert tables_equal(out_ggr, out_ref)
    assert counter.n == opt_calls


def test_env_gate_selects_oracle(monkeypatch):
    """REPRO_SQL_OPT=0 must force the reference path end to end (runtime
    defaults included), matching the explicit-config oracle."""
    rng = random.Random(99)
    table = random_table(rng)
    sql = "SELECT LLM('p5 summarize', text, note) AS s, id FROM t WHERE val >= 2"

    monkeypatch.setenv("REPRO_SQL_OPT", "0")
    counter = CountingAnswerer()
    db = Database(runtime=LLMRuntime(answerer=counter, policy="original"))
    db.register("t", table)
    gated = db.sql(sql)
    gated_calls = counter.n
    monkeypatch.delenv("REPRO_SQL_OPT")

    ref, ref_calls = run_one(sql, table, opt=False)
    assert tables_equal(gated, ref)
    assert gated_calls == ref_calls
