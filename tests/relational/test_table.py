"""Tests for the column-oriented Table."""

import pytest

from repro.errors import SchemaError
from repro.relational.table import Table, render_value


@pytest.fixture
def t():
    return Table(
        {"id": [1, 2, 3], "name": ["a", "b", "c"], "score": [1.5, 2.0, None]}
    )


class TestConstruction:
    def test_shape(self, t):
        assert t.n_rows == 3
        assert t.fields == ("id", "name", "score")

    def test_ragged_rejected(self):
        with pytest.raises(SchemaError):
            Table({"a": [1, 2], "b": [1]})

    def test_from_rows(self):
        t = Table.from_rows(["x", "y"], [[1, 2], [3, 4]])
        assert t.column("y") == [2, 4]

    def test_from_rows_ragged(self):
        with pytest.raises(SchemaError):
            Table.from_rows(["x", "y"], [[1]])

    def test_from_records(self):
        t = Table.from_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert t.column("a") == [1, 3]

    def test_empty(self):
        t = Table({})
        assert t.n_rows == 0 and t.fields == ()


class TestAccess:
    def test_row(self, t):
        assert t.row(1) == {"id": 2, "name": "b", "score": 2.0}

    def test_rows_iteration(self, t):
        assert len(list(t.rows())) == 3

    def test_unknown_column(self, t):
        with pytest.raises(SchemaError):
            t.column("nope")


class TestOperations:
    def test_select(self, t):
        s = t.select(["name", "id"])
        assert s.fields == ("name", "id")

    def test_filter(self, t):
        f = t.filter([True, False, True])
        assert f.column("id") == [1, 3]

    def test_filter_bad_mask(self, t):
        with pytest.raises(SchemaError):
            t.filter([True])

    def test_take_and_head(self, t):
        assert t.take([2, 0]).column("id") == [3, 1]
        assert t.head(2).n_rows == 2
        assert t.head(10).n_rows == 3

    def test_sort_by(self, t):
        s = t.sort_by(["name"])
        assert s.column("name") == ["a", "b", "c"]

    def test_with_column(self, t):
        t2 = t.with_column("flag", [True, False, True])
        assert t2.column("flag") == [True, False, True]
        with pytest.raises(SchemaError):
            t.with_column("bad", [1])

    def test_rename(self, t):
        r = t.rename({"id": "key"})
        assert "key" in r.fields and "id" not in r.fields


class TestJoin:
    def test_inner_join(self):
        left = Table({"k": [1, 2, 2, 3], "l": ["a", "b", "c", "d"]})
        right = Table({"rk": [2, 3, 4], "r": ["x", "y", "z"]})
        j = left.join(right, "k", "rk")
        assert j.n_rows == 3  # k=2 twice, k=3 once
        assert j.fields == ("k", "l", "r")

    def test_join_fanout(self):
        left = Table({"k": [1], "l": ["a"]})
        right = Table({"rk": [1, 1, 1], "r": ["x", "y", "z"]})
        assert left.join(right, "k", "rk").n_rows == 3

    def test_overlapping_columns_rejected(self):
        left = Table({"k": [1], "v": [1]})
        right = Table({"k2": [1], "v": [2]})
        with pytest.raises(SchemaError):
            left.join(right, "k", "k2")

    def test_outer_join_unsupported(self):
        left = Table({"k": [1]})
        right = Table({"rk": [1]})
        with pytest.raises(SchemaError):
            left.join(right, "k", "rk", how="left")


class TestBridging:
    def test_to_reorder_table_stringifies(self, t):
        rt = t.to_reorder_table()
        assert rt.rows[0] == ("1", "a", "1.5")
        assert rt.rows[2] == ("3", "c", "")  # None -> ""

    def test_to_reorder_table_subset(self, t):
        rt = t.to_reorder_table(["name"])
        assert rt.fields == ("name",)

    def test_render_value(self):
        assert render_value(None) == ""
        assert render_value(True) == "true"
        assert render_value(False) == "false"
        assert render_value(2.0) == "2"
        assert render_value(2.5) == "2.5"
        assert render_value("x") == "x"
