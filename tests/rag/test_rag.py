"""Tests for the RAG substrate: embeddings, vector index, retriever."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.rag import HashingEmbedder, Retriever, VectorIndex


class TestEmbedder:
    def test_unit_norm(self):
        e = HashingEmbedder(dim=64)
        v = e.embed_one("some words about beer and reviews")
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_deterministic(self):
        e = HashingEmbedder(dim=64)
        a = e.embed_one("hello world")
        b = e.embed_one("hello world")
        assert np.allclose(a, b)

    def test_similar_texts_closer(self):
        e = HashingEmbedder(dim=256)
        base = e.embed_one("zorro baku lemi toki rensa waldo pim")
        near = e.embed_one("zorro baku lemi toki other words here")
        far = e.embed_one("completely different vocabulary entirely")
        assert float(base @ near) > float(base @ far)

    def test_empty_text(self):
        e = HashingEmbedder(dim=32)
        assert np.allclose(e.embed_one(""), 0.0)

    def test_batch_shape(self):
        e = HashingEmbedder(dim=32)
        assert e.embed(["a", "b", "c"]).shape == (3, 32)
        assert e.embed([]).shape == (0, 32)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=2)


class TestVectorIndex:
    def test_exact_self_retrieval(self):
        e = HashingEmbedder(dim=128)
        texts = [f"passage {i} zimba loko rem{i}" for i in range(10)]
        vecs = e.embed(texts)
        idx = VectorIndex(128)
        idx.add(range(10), vecs)
        ids, scores = idx.search(vecs, k=1)
        assert list(ids[:, 0]) == list(range(10))
        assert np.allclose(scores[:, 0], 1.0)

    def test_k_larger_than_index(self):
        idx = VectorIndex(4)
        idx.add([0], np.eye(4)[:1])
        ids, scores = idx.search(np.eye(4)[:1], k=3)
        assert ids[0, 0] == 0 and ids[0, 1] == -1
        assert scores[0, 1] == -np.inf

    def test_empty_index(self):
        idx = VectorIndex(4)
        ids, _ = idx.search(np.zeros((2, 4)), k=2)
        assert (ids == -1).all()

    def test_shape_validation(self):
        idx = VectorIndex(4)
        with pytest.raises(ReproError):
            idx.add([0], np.zeros((1, 5)))
        with pytest.raises(ReproError):
            idx.add([0, 1], np.zeros((1, 4)))
        with pytest.raises(ReproError):
            idx.search(np.zeros((1, 5)), k=1)

    def test_deterministic_tiebreak(self):
        idx = VectorIndex(4)
        same = np.tile(np.array([[1.0, 0, 0, 0]]), (3, 1))
        idx.add([10, 11, 12], same)
        ids, _ = idx.search(same[:1], k=3)
        assert list(ids[0]) == [10, 11, 12]  # insertion order on ties


class TestRetriever:
    def make(self):
        corpus = [
            "zimba loko remra about brewing and hops",
            "tasty pilsner notes malta zimba",
            "movie review cinema plot acting",
            "space ships aliens scifi plot",
        ]
        return Retriever(corpus)

    def test_retrieves_topically(self):
        r = self.make()
        [ctx] = r.retrieve(["zimba loko brewing"], k=2)
        assert "zimba" in ctx[0]

    def test_retrieve_table_shape(self):
        r = self.make()
        t = r.retrieve_table(["zimba hops", "cinema plot"], k=3,
                             question_field="claim", context_prefix="evidence")
        assert t.fields == ("claim", "evidence1", "evidence2", "evidence3")
        assert t.n_rows == 2

    def test_validation(self):
        with pytest.raises(ReproError):
            Retriever([])
        r = self.make()
        with pytest.raises(ReproError):
            r.retrieve(["q"], k=0)

    def test_shared_contexts_for_similar_questions(self):
        r = self.make()
        t = r.retrieve_table(["zimba loko", "loko zimba brewing"], k=1)
        assert t.column("context1")[0] == t.column("context1")[1]
