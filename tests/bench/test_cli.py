"""Tests for the CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "table6" in out

    def test_unknown_experiment(self, capsys):
        assert main(["warp-drive"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out and "wall time" in out

    def test_run_with_scale_and_out(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        assert main(["table1", "--scale", "0.004", "--out", str(path)]) == 0
        assert "Table 1" in path.read_text()
        capsys.readouterr()
