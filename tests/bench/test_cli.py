"""Tests for the CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "table6" in out

    def test_unknown_experiment(self, capsys):
        assert main(["warp-drive"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out and "wall time" in out

    def test_run_with_scale_and_out(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        assert main(["table1", "--scale", "0.004", "--out", str(path)]) == 0
        assert "Table 1" in path.read_text()
        capsys.readouterr()

    def test_explain_default_demo(self, capsys):
        from repro.relational import sql_opt_enabled

        assert main(["explain", "--scale", "0.004"]) == 0
        out = capsys.readouterr().out
        if sql_opt_enabled():
            assert "rewrites:" in out
        else:  # REPRO_SQL_OPT=0 CI run: the unoptimized oracle plan
            assert "optimizer disabled" in out
        assert "Filter[LLM]" in out
        assert "CatalogScan(movies)" in out

    def test_explain_custom_sql_and_out(self, tmp_path, capsys):
        path = tmp_path / "plan.txt"
        sql = "SELECT movietitle FROM movies WHERE reviewtype = 'Fresh' LIMIT 3"
        assert main(
            ["explain", "--scale", "0.004", "--sql", sql, "--out", str(path)]
        ) == 0
        text = path.read_text()
        assert "Limit(3)" in text and "reviewtype = 'Fresh'" in text
        capsys.readouterr()
