"""Tests for the CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "table6" in out

    def test_unknown_experiment(self, capsys):
        assert main(["warp-drive"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out and "wall time" in out

    def test_run_with_scale_and_out(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        assert main(["table1", "--scale", "0.004", "--out", str(path)]) == 0
        assert "Table 1" in path.read_text()
        capsys.readouterr()

    def test_explain_default_demo(self, capsys):
        from repro.relational import sql_opt_enabled

        assert main(["explain", "--scale", "0.004"]) == 0
        out = capsys.readouterr().out
        if sql_opt_enabled():
            assert "rewrites:" in out
        else:  # REPRO_SQL_OPT=0 CI run: the unoptimized oracle plan
            assert "optimizer disabled" in out
        assert "Filter[LLM]" in out
        assert "CatalogScan(movies)" in out

    def test_explain_custom_sql_and_out(self, tmp_path, capsys):
        path = tmp_path / "plan.txt"
        sql = "SELECT movietitle FROM movies WHERE reviewtype = 'Fresh' LIMIT 3"
        assert main(
            ["explain", "--scale", "0.004", "--sql", sql, "--out", str(path)]
        ) == 0
        text = path.read_text()
        assert "Limit(3)" in text and "reviewtype = 'Fresh'" in text
        capsys.readouterr()


class TestExplainErrors:
    """`repro explain` user errors exit nonzero with a one-line message,
    never a traceback."""

    def test_malformed_sql(self, capsys):
        assert main(["explain", "--scale", "0.004", "--sql", "SELECT FROM"]) == 2
        captured = capsys.readouterr()
        assert "explain failed:" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_unknown_table(self, capsys):
        assert main(
            ["explain", "--scale", "0.004", "--sql", "SELECT a FROM warp_drive"]
        ) == 2
        captured = capsys.readouterr()
        assert "warp_drive" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err


class TestServeTrace:
    def test_synthesized_demo(self, capsys):
        assert main(
            ["serve-trace", "--scale", "0.004", "--requests", "24",
             "--policy", "fcfs,prefix-affinity", "--deadline", "120"]
        ) == 0
        out = capsys.readouterr().out
        from repro.llm.scheduler import serving_online_enabled

        assert "fcfs" in out
        if serving_online_enabled():
            assert "prefix-affinity" in out
        else:  # REPRO_SERVING_ONLINE=0 CI run: both rows resolve to fcfs
            assert "offline replay" in out
        assert "p95_ttft" in out
        assert "per-tenant SLO" in out and "(all)" in out
        assert "deadline" in out

    def test_trace_file_round_trip(self, tmp_path, capsys):
        saved = tmp_path / "trace.json"
        assert main(
            ["serve-trace", "--scale", "0.004", "--requests", "12",
             "--policy", "fcfs", "--save-trace", str(saved)]
        ) == 0
        capsys.readouterr()
        assert saved.exists()
        assert main(
            ["serve-trace", "--policy", "sjf", "--trace", str(saved)]
        ) == 0
        out = capsys.readouterr().out
        from repro.llm.scheduler import serving_online_enabled

        assert ("sjf" if serving_online_enabled() else "fcfs") in out

    def test_unknown_policy_fails_cleanly(self, capsys):
        assert main(
            ["serve-trace", "--scale", "0.004", "--requests", "6",
             "--policy", "warp"]
        ) == 2
        captured = capsys.readouterr()
        assert "serve-trace failed:" in captured.err
        assert "Traceback" not in captured.err

    def test_missing_trace_file_fails_cleanly(self, capsys):
        assert main(["serve-trace", "--trace", "/nonexistent/t.json"]) == 2
        assert "serve-trace failed:" in capsys.readouterr().err


class TestServeCluster:
    def test_routing_sweep(self, capsys):
        assert main(
            ["serve-cluster", "--scale", "0.004", "--requests", "24",
             "--replicas", "3", "--routing", "round-robin,prefix-aware",
             "--deadline", "120"]
        ) == 0
        out = capsys.readouterr().out
        from repro.llm.cluster import serving_cluster_enabled

        assert "round-robin" in out
        if serving_cluster_enabled():
            assert "prefix-aware" in out
            assert "replica" in out and "load skew" in out
        else:  # REPRO_SERVING_CLUSTER=0 CI run: single-replica reference
            assert "single-replica reference" in out
        assert "goodput" in out
        assert "per-tenant SLO" in out and "(all)" in out

    def test_trace_file_input(self, tmp_path, capsys):
        saved = tmp_path / "trace.json"
        assert main(
            ["serve-trace", "--scale", "0.004", "--requests", "12",
             "--policy", "fcfs", "--save-trace", str(saved)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["serve-cluster", "--trace", str(saved), "--replicas", "2",
             "--routing", "least-queue"]
        ) == 0
        out = capsys.readouterr().out
        from repro.llm.cluster import serving_cluster_enabled

        if serving_cluster_enabled():
            assert "least-queue" in out
        else:  # gate forces the single-replica round-robin reference
            assert "single-replica reference" in out
        assert "12 requests" in out

    def test_unknown_routing_fails_cleanly(self, capsys):
        assert main(
            ["serve-cluster", "--scale", "0.004", "--requests", "6",
             "--routing", "warp"]
        ) == 2
        captured = capsys.readouterr()
        assert "serve-cluster failed:" in captured.err
        assert "Traceback" not in captured.err

    def test_bad_replicas_fails_cleanly(self, capsys):
        assert main(
            ["serve-cluster", "--scale", "0.004", "--requests", "6",
             "--replicas", "0"]
        ) == 2
        assert "serve-cluster failed:" in capsys.readouterr().err


class TestServeTraceEncodeCache:
    """Satellite: the serve-trace sweep surfaces encode-cache telemetry."""

    def test_encode_cache_line_renders(self, capsys):
        assert main(
            ["serve-trace", "--scale", "0.004", "--requests", "12",
             "--policy", "fcfs,sjf"]
        ) == 0
        out = capsys.readouterr().out
        assert "encode cache:" in out
        assert "hits" in out and "misses" in out
        # Two policies replay the same 12 prompts on one shared tokenizer:
        # the second sweep hits for every distinct prompt.
        import re

        m = re.search(r"encode cache: (\d+) hits / (\d+) misses", out)
        assert m, out
        assert int(m.group(1)) >= int(m.group(2))
