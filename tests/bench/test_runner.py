"""Tests for the benchmark runner and workload answerer."""

import pytest

from repro.bench.policies import CACHE_GGR, CACHE_ORIGINAL, NO_CACHE
from repro.bench.queries import get_query
from repro.bench.runner import (
    RunResult,
    WorkloadAnswerer,
    run_policies,
    run_query,
    scaled_kv_capacity,
)
from repro.core.table import Cell
from repro.data import build_dataset
from repro.errors import ReproError
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B

SCALE = 0.004


@pytest.fixture(scope="module")
def movies():
    return build_dataset("movies", scale=SCALE, seed=0)


class TestWorkloadAnswerer:
    def test_deterministic_and_policy_independent(self, movies):
        q = get_query("movies-T2")
        a = WorkloadAnswerer(movies, q, seed=0)
        b = WorkloadAnswerer(movies, q, seed=0)
        cells1 = (Cell("x", "1"),)
        cells2 = (Cell("y", "2"), Cell("x", "1"))
        assert a("p", cells1, 3) == b("p", cells2, 3)  # depends on row, not cells

    def test_filter_answers_are_labels(self, movies):
        q = get_query("movies-T1")
        ans = WorkloadAnswerer(movies, q, seed=0)
        assert ans(q.prompt, (), 0) == movies.labels[0]

    def test_aggregation_answers_numeric(self, movies):
        q = get_query("movies-T4")
        ans = WorkloadAnswerer(movies, q, seed=0)
        vals = {int(ans(q.prompt, (), i)) for i in range(30)}
        assert vals <= {1, 2, 3, 4, 5}

    def test_stage1_answers_sentiment(self, movies):
        q = get_query("movies-T3")
        ans = WorkloadAnswerer(movies, q, seed=0)
        assert ans(q.stage1_prompt, (), 0) in ("POSITIVE", "NEGATIVE")

    def test_projection_length_tracks_profile(self, movies):
        from repro.llm.tokenizer import HashTokenizer

        q = get_query("movies-T2")
        ans = WorkloadAnswerer(movies, q, seed=0)
        tok = HashTokenizer()
        lens = [tok.count(ans(q.prompt, (), i)) for i in range(20)]
        target = movies.output_tokens["T2"]
        assert target * 0.5 <= sum(lens) / len(lens) <= target * 1.6


class TestRunQuery:
    def test_result_fields(self, movies):
        q = get_query("movies-T1")
        res = run_query(q, movies, CACHE_GGR, seed=0)
        assert isinstance(res, RunResult)
        assert res.n_rows == movies.n_rows
        assert res.prompt_tokens > 0
        assert res.cached_tokens + res.prefill_tokens == res.prompt_tokens
        assert res.engine_seconds > 0
        assert res.end_to_end_seconds >= res.engine_seconds

    def test_dataset_mismatch_rejected(self, movies):
        q = get_query("beer-T1")
        with pytest.raises(ReproError):
            run_query(q, movies, CACHE_GGR)

    def test_no_cache_zero_phr(self, movies):
        res = run_query(get_query("movies-T1"), movies, NO_CACHE)
        assert res.phr == 0.0

    def test_t3_runs_two_calls(self, movies):
        res = run_query(get_query("movies-T3"), movies, CACHE_GGR)
        assert res.n_llm_calls == 2

    def test_policy_ordering_holds(self, movies):
        res = run_policies(get_query("movies-T1"), movies)
        assert (
            res["Cache (GGR)"].engine_seconds
            <= res["Cache (Original)"].engine_seconds
            <= res["No Cache"].engine_seconds * 1.01
        )
        assert res["Cache (GGR)"].phr >= res["Cache (Original)"].phr

    def test_determinism(self, movies):
        q = get_query("movies-T1")
        a = run_query(q, movies, CACHE_GGR, seed=1)
        b = run_query(q, movies, CACHE_GGR, seed=1)
        assert a.engine_seconds == b.engine_seconds
        assert a.phr == b.phr


class TestScaledCapacity:
    def test_full_scale_is_cost_model_capacity(self):
        from repro.llm.costmodel import CostModel

        cap = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 1.0, 300)
        assert cap == CostModel(LLAMA3_8B, CLUSTER_1XL4).kv_capacity_tokens

    def test_scaling_shrinks(self):
        big = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.5, 300)
        small = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.1, 300)
        assert small < big

    def test_batch_floor(self):
        cap = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.0001, 1000, max_batch_size=64)
        assert cap >= int(64 * 1000 * 0.75)
