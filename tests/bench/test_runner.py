"""Tests for the benchmark runner and workload answerer."""

import dataclasses

import pytest

from repro.bench.policies import CACHE_GGR, CACHE_ORIGINAL, NO_CACHE
from repro.bench.queries import get_query
from repro.bench.runner import (
    RunResult,
    WorkloadAnswerer,
    run_policies,
    run_query,
    scaled_kv_capacity,
)
from repro.core.table import Cell
from repro.data import build_dataset
from repro.errors import ReproError
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B

SCALE = 0.004


@pytest.fixture(scope="module")
def movies():
    return build_dataset("movies", scale=SCALE, seed=0)


class TestWorkloadAnswerer:
    def test_deterministic_and_policy_independent(self, movies):
        q = get_query("movies-T2")
        a = WorkloadAnswerer(movies, q, seed=0)
        b = WorkloadAnswerer(movies, q, seed=0)
        cells1 = (Cell("x", "1"),)
        cells2 = (Cell("y", "2"), Cell("x", "1"))
        assert a("p", cells1, 3) == b("p", cells2, 3)  # depends on row, not cells

    def test_filter_answers_are_labels(self, movies):
        q = get_query("movies-T1")
        ans = WorkloadAnswerer(movies, q, seed=0)
        assert ans(q.prompt, (), 0) == movies.labels[0]

    def test_aggregation_answers_numeric(self, movies):
        q = get_query("movies-T4")
        ans = WorkloadAnswerer(movies, q, seed=0)
        vals = {int(ans(q.prompt, (), i)) for i in range(30)}
        assert vals <= {1, 2, 3, 4, 5}

    def test_stage1_answers_sentiment(self, movies):
        q = get_query("movies-T3")
        ans = WorkloadAnswerer(movies, q, seed=0)
        assert ans(q.stage1_prompt, (), 0) in ("POSITIVE", "NEGATIVE")

    def test_projection_length_tracks_profile(self, movies):
        from repro.llm.tokenizer import HashTokenizer

        q = get_query("movies-T2")
        ans = WorkloadAnswerer(movies, q, seed=0)
        tok = HashTokenizer()
        lens = [tok.count(ans(q.prompt, (), i)) for i in range(20)]
        target = movies.output_tokens["T2"]
        assert target * 0.5 <= sum(lens) / len(lens) <= target * 1.6


class TestRunQuery:
    def test_result_fields(self, movies):
        q = get_query("movies-T1")
        res = run_query(q, movies, CACHE_GGR, seed=0)
        assert isinstance(res, RunResult)
        assert res.n_rows == movies.n_rows
        assert res.prompt_tokens > 0
        assert res.cached_tokens + res.prefill_tokens == res.prompt_tokens
        assert res.engine_seconds > 0
        assert res.end_to_end_seconds >= res.engine_seconds

    def test_dataset_mismatch_rejected(self, movies):
        q = get_query("beer-T1")
        with pytest.raises(ReproError):
            run_query(q, movies, CACHE_GGR)

    def test_no_cache_zero_phr(self, movies):
        res = run_query(get_query("movies-T1"), movies, NO_CACHE)
        assert res.phr == 0.0

    def test_t3_runs_two_calls(self, movies):
        res = run_query(get_query("movies-T3"), movies, CACHE_GGR)
        assert res.n_llm_calls == 2

    def test_dedup_telemetry_plumbed(self, movies):
        """RunResult surfaces the SQL-optimizer telemetry; the paper's
        benchmark rows are distinct on their touched fields, so dedup is a
        no-op there (n_distinct == rows solved, nothing saved)."""
        q = get_query("movies-T1")
        res = run_query(q, movies, CACHE_GGR, seed=0)
        assert res.n_distinct_llm_rows == res.n_rows
        assert res.dedup_saved_prompt_tokens == 0
        assert res.memo_hits == 0
        assert res.dedup_savings == 0.0

    def test_policy_ordering_holds(self, movies):
        res = run_policies(get_query("movies-T1"), movies)
        assert (
            res["Cache (GGR)"].engine_seconds
            <= res["Cache (Original)"].engine_seconds
            <= res["No Cache"].engine_seconds * 1.01
        )
        assert res["Cache (GGR)"].phr >= res["Cache (Original)"].phr

    def test_determinism(self, movies):
        q = get_query("movies-T1")
        a = run_query(q, movies, CACHE_GGR, seed=1)
        b = run_query(q, movies, CACHE_GGR, seed=1)
        assert a.engine_seconds == b.engine_seconds
        assert a.phr == b.phr

    def test_empty_table_returns_result(self, movies):
        """Regression: an empty source table must yield a RunResult (no
        IndexError from the schedule_phr rollup), with zeroed metrics."""
        tbl = movies.table
        empty = dataclasses.replace(
            movies, table=tbl.filter([False] * tbl.n_rows), labels=[]
        )
        res = run_query(get_query("movies-T1"), empty, CACHE_GGR)
        assert isinstance(res, RunResult)
        assert res.n_rows == 0
        assert res.prompt_tokens == 0
        assert res.schedule_phr == 0.0
        assert res.phr == 0.0

    def test_t3_stage1_keeps_zero_rows(self, movies):
        """Regression: a T3 whose stage-1 filter rejects every row must
        still return a RunResult covering both stages."""
        q = get_query("movies-T3")

        class RejectAll(WorkloadAnswerer):
            def sentiment(self, row_id):
                return "NEITHER"  # never equals stage1_keep

        res = run_query(q, movies, CACHE_GGR, answerer=RejectAll(movies, q))
        assert isinstance(res, RunResult)
        assert res.n_llm_calls == 2
        # Stage 1 ran over the full table; stage 2 over zero rows.
        assert res.prompt_tokens > 0
        assert 0.0 <= res.schedule_phr <= 1.0

    def test_schedule_phr_aggregates_stages(self, movies):
        """schedule_phr reflects every stage of a multi-stage query, not
        only the last call: for a T3 it must lie within the per-stage
        range (strictly, a prompt-volume-weighted mean)."""
        from repro.llm.client import SimulatedLLMClient
        from repro.llm.engine import EngineConfig
        from repro.relational.expressions import LLMExpr
        from repro.relational.llm_functions import LLMRuntime

        q = get_query("movies-T3")
        res = run_query(q, movies, CACHE_GGR, seed=0)
        # Recompute the per-stage figures independently.
        client = SimulatedLLMClient(engine_config=EngineConfig())
        runtime = LLMRuntime(
            client=client,
            policy=CACHE_GGR.reorder_policy,
            fds=movies.fds,
            answerer=WorkloadAnswerer(movies, q, seed=0),
        )
        stage1 = runtime.execute(
            movies.table, LLMExpr(q.stage1_prompt, q.stage1_fields)
        )
        mask = [a == q.stage1_keep for a in stage1]
        runtime.execute(movies.table.filter(mask), LLMExpr(q.prompt, q.fields))
        phrs = [c.schedule_phr for c in runtime.calls]
        assert len(phrs) == 2
        assert min(phrs) - 1e-12 <= res.schedule_phr <= max(phrs) + 1e-12

    def test_paged_metrics_reported(self, movies):
        """Block-granular admission surfaces fragmentation on a real
        benchmark workload at block_tokens=16 and none at block_tokens=1."""
        q = get_query("movies-T1")
        res = run_query(q, movies, CACHE_GGR, kv_accounting="paged", block_tokens=16)
        assert res.kv_accounting == "paged"
        assert res.block_tokens == 16
        assert res.peak_kv_blocks > 0
        assert res.fragmentation_tokens > 0
        assert 0.0 < res.fragmentation < 1.0
        assert res.peak_kv_blocks * 16 >= res.peak_kv_tokens

        unit = run_query(q, movies, CACHE_GGR, kv_accounting="paged", block_tokens=1)
        assert unit.fragmentation_tokens == 0
        assert unit.fragmentation == 0.0
        assert unit.peak_kv_blocks == unit.peak_kv_tokens

    def test_token_oracle_matches_paged_at_block_one(self, movies):
        """End-to-end through the bench runner: the token-sum oracle and
        the paged path at block_tokens=1 produce identical schedules."""
        q = get_query("movies-T1")
        tok = run_query(q, movies, CACHE_GGR, kv_accounting="tokens")
        pag = run_query(q, movies, CACHE_GGR, kv_accounting="paged", block_tokens=1)
        assert tok.kv_accounting == "tokens" and pag.kv_accounting == "paged"
        assert pag.cached_tokens == tok.cached_tokens
        assert pag.prefill_tokens == tok.prefill_tokens
        assert pag.peak_kv_tokens == tok.peak_kv_tokens
        assert pag.engine_seconds == pytest.approx(
            tok.engine_seconds, rel=1e-6
        )


class TestScaledCapacity:
    def test_full_scale_is_cost_model_capacity(self):
        from repro.llm.costmodel import CostModel

        cap = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 1.0, 300)
        assert cap == CostModel(LLAMA3_8B, CLUSTER_1XL4).kv_capacity_tokens

    def test_scaling_shrinks(self):
        big = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.5, 300)
        small = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.1, 300)
        assert small < big

    def test_batch_floor(self):
        cap = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.0001, 1000, max_batch_size=64)
        assert cap >= int(64 * 1000 * 0.75)

    def test_zero_prompt_estimate_still_one_block(self):
        """Regression: prompt_tokens_estimate=0 at a tiny scale used to
        produce a 0-token capacity (a zero-block paged pool)."""
        cap = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 1e-9, 0)
        assert cap >= 16

        from repro.llm.blocks import BlockManager

        BlockManager(cap, block_tokens=16)  # must not raise

    def test_nonsensical_inputs_raise_repro_error(self):
        with pytest.raises(ReproError):
            scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.0, 300)
        with pytest.raises(ReproError):
            scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, -1.0, 300)
        with pytest.raises(ReproError):
            scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.5, -5)
        with pytest.raises(ReproError):
            scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.5, 300, max_batch_size=0)
        with pytest.raises(ReproError):
            scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, 0.5, 300, block_tokens=0)
