"""Tests for the perf-trajectory record/compare machinery."""

import json

import pytest

from repro.bench.perf import (
    DEFAULT_TOLERANCE,
    bench_path,
    compare,
    load,
    main,
    record,
    satisfies,
)
from repro.bench.runner import RunResult, emit_perf_records
from repro.errors import ReproError


class TestRecord:
    def test_round_trip(self, tmp_path):
        rec = record(
            "area", "speedup", 2.345678, ">= 2.0",
            directory=str(tmp_path), commit="abc1234",
        )
        assert rec["value"] == 2.3457  # rounded for stable diffs
        got = load(str(tmp_path / "BENCH_area.json"))
        assert got["speedup"] == rec

    def test_upsert_by_benchmark_name(self, tmp_path):
        record("a", "x", 1.0, ">= 0.5", directory=str(tmp_path), commit="c1")
        record("a", "y", 2.0, ">= 0.5", directory=str(tmp_path), commit="c1")
        record("a", "x", 3.0, ">= 0.5", directory=str(tmp_path), commit="c2")
        got = load(str(tmp_path / "BENCH_a.json"))
        assert set(got) == {"x", "y"}
        assert got["x"]["value"] == 3.0 and got["x"]["commit"] == "c2"

    def test_records_sorted_for_stable_diffs(self, tmp_path):
        record("a", "zz", 1.0, ">= 0", directory=str(tmp_path), commit="c")
        record("a", "aa", 1.0, ">= 0", directory=str(tmp_path), commit="c")
        raw = json.loads((tmp_path / "BENCH_a.json").read_text())
        assert [r["benchmark"] for r in raw["records"]] == ["aa", "zz"]

    def test_creates_directory(self, tmp_path):
        record(
            "a", "x", 1.0, ">= 0",
            directory=str(tmp_path / "nested" / "dir"), commit="c",
        )
        assert (tmp_path / "nested" / "dir" / "BENCH_a.json").exists()

    def test_invalid_criterion_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            record("a", "x", 1.0, "> 2.0", directory=str(tmp_path))
        with pytest.raises(ReproError):
            record("a", "x", 1.0, "at least 2", directory=str(tmp_path))

    def test_bench_path_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert bench_path("serving") == str(tmp_path / "BENCH_serving.json")


class TestSatisfies:
    def test_directions(self):
        assert satisfies(2.5, ">= 2.0")
        assert not satisfies(1.5, ">= 2.0")
        assert satisfies(0.1, "<= 0.2")
        assert not satisfies(0.3, "<= 0.2")


def _recs(**values):
    return {
        name: {"benchmark": name, "value": v, "criterion": ">= 1.0", "commit": "c"}
        for name, v in values.items()
    }


class TestCompare:
    def test_pass_within_tolerance(self):
        assert compare(_recs(x=1.9), _recs(x=2.0)) == []

    def test_regression_beyond_tolerance(self):
        problems = compare(_recs(x=1.2), _recs(x=2.0))
        assert len(problems) == 1 and "regressed below" in problems[0]

    def test_criterion_violation_flagged(self):
        problems = compare(_recs(x=0.9), _recs(x=1.0))
        assert any("criterion" in p for p in problems)

    def test_missing_benchmark_is_regression(self):
        problems = compare({}, _recs(x=2.0))
        assert len(problems) == 1 and "not in fresh run" in problems[0]

    def test_new_benchmark_not_a_regression(self):
        assert compare(_recs(x=2.0, brand_new=5.0), _recs(x=2.0)) == []

    def test_smaller_is_better_direction(self):
        base = {"x": {"benchmark": "x", "value": 0.1, "criterion": "<= 0.5"}}
        ok = {"x": {"benchmark": "x", "value": 0.11, "criterion": "<= 0.5"}}
        bad = {"x": {"benchmark": "x", "value": 0.4, "criterion": "<= 0.5"}}
        assert compare(ok, base) == []
        assert any("regressed above" in p for p in compare(bad, base))

    def test_per_record_tolerance_overrides(self):
        base = {
            "x": {"benchmark": "x", "value": 2.0, "criterion": ">= 1.0",
                  "tolerance": 0.01}
        }
        fresh = _recs(x=1.9)  # within the default band, outside 1%
        assert compare(fresh, base, tolerance=DEFAULT_TOLERANCE) != []


class TestCli:
    def _write(self, path, recs):
        path.write_text(json.dumps({"records": list(recs.values())}))

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        f, b = tmp_path / "f.json", tmp_path / "b.json"
        self._write(f, _recs(x=2.1))
        self._write(b, _recs(x=2.0))
        assert main(["compare", "--fresh", str(f), "--baseline", str(b)]) == 0
        assert "no perf regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        f, b = tmp_path / "f.json", tmp_path / "b.json"
        self._write(f, _recs(x=1.0))
        self._write(b, _recs(x=2.0))
        assert main(["compare", "--fresh", str(f), "--baseline", str(b)]) == 1
        assert "regression" in capsys.readouterr().err


class TestShow:
    def _write(self, path, recs):
        path.write_text(json.dumps({"records": list(recs.values())}))

    def test_renders_table_per_area(self, tmp_path, capsys):
        a = tmp_path / "BENCH_core.json"
        b = tmp_path / "BENCH_serving.json"
        self._write(a, _recs(core_speedup=2.5))
        self._write(b, _recs(replay_speedup=3.1))
        assert main(["show", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "area: core" in out and "area: serving" in out
        assert "core_speedup" in out and "replay_speedup" in out
        assert "benchmark" in out and "criterion" in out and "commit" in out
        assert "OK" in out

    def test_failing_criterion_renders_fail_but_exits_zero(
        self, tmp_path, capsys
    ):
        f = tmp_path / "BENCH_x.json"
        self._write(f, _recs(slow=0.4))  # criterion is ">= 1.0"
        assert main(["show", str(f)]) == 0
        out = capsys.readouterr().out
        assert "FAIL" in out and "0.4" in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["show", str(tmp_path / "BENCH_ghost.json")]) == 2
        assert "missing file" in capsys.readouterr().err

    def test_no_default_files_exits_two(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["show"]) == 2
        assert "no BENCH_*.json files" in capsys.readouterr().err

    def test_default_glob_finds_committed_baselines(
        self, tmp_path, capsys, monkeypatch
    ):
        base = tmp_path / "benchmarks" / "baselines"
        base.mkdir(parents=True)
        self._write(base / "BENCH_area.json", _recs(metric=1.5))
        monkeypatch.chdir(tmp_path)
        assert main(["show"]) == 0
        assert "area: area" in capsys.readouterr().out


class TestEmitPerfRecords:
    def _result(self, policy, engine_seconds, phr=0.5):
        return RunResult(
            query_id="Q1", dataset="Movies", policy=policy, model="m",
            engine_seconds=engine_seconds, solver_seconds=0.0,
            phr=phr, schedule_phr=phr, exact_phc=10,
            prompt_tokens=100, cached_tokens=50, prefill_tokens=50,
            decode_tokens=20, n_rows=10, n_llm_calls=1,
        )

    def test_emits_speedup_and_phr(self, tmp_path):
        results = {
            "No Cache": self._result("No Cache", 10.0, phr=0.0),
            "Cache (GGR)": self._result("Cache (GGR)", 4.0, phr=0.62),
        }
        recs = emit_perf_records(
            results, area="bench", directory=str(tmp_path)
        )
        assert recs["speedup"]["value"] == 2.5
        assert recs["phr"]["value"] == 0.62
        got = load(str(tmp_path / "BENCH_bench.json"))
        assert set(got) == {"q1_movies_jct_speedup", "q1_movies_phr"}
