"""Tests for reporting helpers."""

import pytest

from repro.bench.reporting import (
    ExperimentOutput,
    ResultTable,
    default_scale,
    default_seed,
    fmt_pct,
    fmt_seconds,
    fmt_speedup,
)


class TestFormatters:
    def test_speedup(self):
        assert fmt_speedup(10.0, 4.0) == "2.5x"
        assert fmt_speedup(1.0, 0.0) == "inf"

    def test_pct(self):
        assert fmt_pct(0.123) == "12.3%"
        assert fmt_pct(0.5, digits=0) == "50%"

    def test_seconds(self):
        assert fmt_seconds(250.0) == "250s"
        assert fmt_seconds(2.5) == "2.5s"
        assert fmt_seconds(0.05) == "50ms"


class TestResultTable:
    def test_render_alignment(self):
        t = ResultTable("Title", ["A", "Blong"])
        t.add_row("x", 1)
        t.add_row("yyyy", 22)
        text = t.render()
        assert "Title" in text
        lines = text.splitlines()
        assert lines[2].startswith("A")
        assert "yyyy" in text

    def test_wrong_arity(self):
        t = ResultTable("T", ["A"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)


class TestExperimentOutput:
    def test_render_includes_tables_and_notes(self):
        out = ExperimentOutput(name="X")
        t = ResultTable("T", ["A"])
        t.add_row("v")
        out.tables.append(t)
        out.notes.append("hello")
        text = out.render()
        assert "== X ==" in text and "hello" in text and "v" in text


class TestEnvDefaults:
    def test_default_scale_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_scale(0.07) == 0.07

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5

    def test_default_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            default_scale()

    def test_default_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "9")
        assert default_seed() == 9
        monkeypatch.delenv("REPRO_SEED")
        assert default_seed(3) == 3
