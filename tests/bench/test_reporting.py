"""Tests for reporting helpers."""

import pytest

from repro.bench.reporting import (
    ExperimentOutput,
    ResultTable,
    default_scale,
    default_seed,
    fmt_pct,
    fmt_seconds,
    fmt_speedup,
)


class TestFormatters:
    def test_speedup(self):
        assert fmt_speedup(10.0, 4.0) == "2.5x"
        assert fmt_speedup(1.0, 0.0) == "inf"

    def test_pct(self):
        assert fmt_pct(0.123) == "12.3%"
        assert fmt_pct(0.5, digits=0) == "50%"

    def test_seconds(self):
        assert fmt_seconds(250.0) == "250s"
        assert fmt_seconds(2.5) == "2.5s"
        assert fmt_seconds(0.05) == "50ms"


class TestResultTable:
    def test_render_alignment(self):
        t = ResultTable("Title", ["A", "Blong"])
        t.add_row("x", 1)
        t.add_row("yyyy", 22)
        text = t.render()
        assert "Title" in text
        lines = text.splitlines()
        assert lines[2].startswith("A")
        assert "yyyy" in text

    def test_wrong_arity(self):
        t = ResultTable("T", ["A"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)


class TestExperimentOutput:
    def test_render_includes_tables_and_notes(self):
        out = ExperimentOutput(name="X")
        t = ResultTable("T", ["A"])
        t.add_row("v")
        out.tables.append(t)
        out.notes.append("hello")
        text = out.render()
        assert "== X ==" in text and "hello" in text and "v" in text


class TestEnvDefaults:
    def test_default_scale_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_scale(0.07) == 0.07

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5

    def test_default_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            default_scale()

    def test_default_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "9")
        assert default_seed() == 9
        monkeypatch.delenv("REPRO_SEED")
        assert default_seed(3) == 3


class TestPercentile:
    def test_nearest_rank_basics(self):
        from repro.bench.reporting import percentile

        vals = [15.0, 20.0, 35.0, 40.0, 50.0]
        assert percentile(vals, 5) == 15.0
        assert percentile(vals, 30) == 20.0
        assert percentile(vals, 40) == 20.0
        assert percentile(vals, 50) == 35.0
        assert percentile(vals, 100) == 50.0
        assert percentile(vals, 0) == 15.0

    def test_returns_actual_observation(self):
        from repro.bench.reporting import percentile

        vals = list(range(100))
        for q in (50, 95, 99):
            assert percentile(vals, q) in vals
        assert percentile(vals, 95) == 94  # ceil(0.95*100)=95th value
        assert percentile(vals, 99) == 98

    def test_unsorted_input(self):
        from repro.bench.reporting import percentile

        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_empty_safe(self):
        from repro.bench.reporting import latency_percentiles, percentile

        assert percentile([], 95) == 0.0
        assert latency_percentiles([]) == (0.0, 0.0, 0.0)

    def test_out_of_range_rejected(self):
        from repro.bench.reporting import percentile

        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_value(self):
        from repro.bench.reporting import latency_percentiles, percentile

        assert percentile([7.0], 99) == 7.0
        assert latency_percentiles([7.0]) == (7.0, 7.0, 7.0)

    def test_latency_percentiles_matches_percentile(self):
        from repro.bench.reporting import latency_percentiles, percentile

        vals = [0.5 * i for i in range(17)]
        p50, p95, p99 = latency_percentiles(vals)
        assert (p50, p95, p99) == (
            percentile(vals, 50),
            percentile(vals, 95),
            percentile(vals, 99),
        )

    def test_bootstrap_reuses_helper(self):
        """compare_orderings CI bounds are nearest-rank observations of
        the bootstrap distribution."""
        from repro.accuracy.bootstrap import bootstrap_accuracy, compare_orderings
        from repro.bench.reporting import percentile

        a = [True] * 60 + [False] * 40
        cmp_res = compare_orderings(a, a, n_boot=500, seed=3)
        dist = bootstrap_accuracy(a, n_boot=500, seed=3)
        assert cmp_res.ci_a == (percentile(dist, 2.5), percentile(dist, 97.5))
        assert cmp_res.median_a == percentile(dist, 50)
