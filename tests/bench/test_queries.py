"""Tests for the 16-query benchmark suite definition."""

import pytest

from repro.bench.queries import (
    ALL_QUERIES,
    FILTER_PROMPTS,
    SENTIMENT_PROMPT,
    get_query,
    queries_by_type,
)


class TestSuiteShape:
    def test_sixteen_queries(self):
        assert len(ALL_QUERIES) == 16

    def test_type_counts_match_paper(self):
        counts = {t: len(queries_by_type(t)) for t in ("T1", "T2", "T3", "T4", "T5")}
        assert counts == {"T1": 5, "T2": 5, "T3": 2, "T4": 2, "T5": 2}

    def test_unique_ids(self):
        ids = [q.query_id for q in ALL_QUERIES]
        assert len(set(ids)) == len(ids)

    def test_t1_covers_five_datasets(self):
        assert {q.dataset for q in queries_by_type("T1")} == {
            "movies", "products", "bird", "pdmx", "beer",
        }

    def test_t5_covers_rag_datasets(self):
        assert {q.dataset for q in queries_by_type("T5")} == {"fever", "squad"}

    def test_t3_has_two_stages(self):
        for q in queries_by_type("T3"):
            assert q.stage1_prompt == SENTIMENT_PROMPT
            assert q.stage1_fields
            assert q.stage1_keep == "NEGATIVE"

    def test_non_t3_single_stage(self):
        for q in ALL_QUERIES:
            if q.qtype != "T3":
                assert q.stage1_prompt is None

    def test_appendix_c_prompts_present(self):
        assert "suitable for kids" in FILTER_PROMPTS["movies"]
        assert "European" in FILTER_PROMPTS["beer"]
        assert "statistics" in FILTER_PROMPTS["bird"]

    def test_get_query(self):
        q = get_query("movies-T1")
        assert q.dataset == "movies" and q.qtype == "T1"
        with pytest.raises(KeyError):
            get_query("nope-T9")

    def test_output_types_resolve(self):
        from repro.data import build_dataset

        for q in ALL_QUERIES:
            ds = build_dataset(q.dataset, scale=0.002, seed=0)
            assert q.output_type in ds.output_tokens
