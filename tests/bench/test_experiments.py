"""Smoke + shape tests for every experiment driver at tiny scale.

These assert the *reproduction claims* (who wins, direction of effects),
not absolute numbers; the benchmarks/ suite runs the same drivers at
larger scale.
"""

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.experiments import (
    ablations,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

SCALE = 0.004


class TestRegistry:
    def test_all_exhibits_covered(self):
        names = set(EXPERIMENTS)
        for required in ("table1", "fig1", "fig3a", "fig3b", "fig4", "fig5",
                         "fig6", "table2", "table3", "table4", "table5",
                         "table6", "table7"):
            assert required in names

    def test_every_entry_callable(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())


class TestTable1:
    def test_fields_match_paper(self):
        out = table1.run(scale=SCALE)
        assert out.metrics["movies.fields"] == 8
        assert out.metrics["bird.fields"] == 4
        assert out.metrics["pdmx.fields"] >= 57

    def test_input_lengths_within_band(self):
        out = table1.run(scale=SCALE)
        for name in ("movies", "products", "bird", "pdmx", "beer", "fever", "squad"):
            measured = out.metrics[f"{name}.input_avg"]
            paper = out.metrics[f"{name}.paper_input_avg"]
            assert 0.6 * paper <= measured <= 1.6 * paper


class TestFig1:
    def test_theory_matched_exactly(self):
        out = fig1.run(n=12, m=4, x=5)
        assert out.metrics["fig1a.identity"] == 0
        assert out.metrics["fig1a.ggr"] == out.metrics["fig1a.theory"]
        assert out.metrics["fig1b.gap"] == pytest.approx(3.0)


class TestFig3:
    def test_fig3a_policy_ordering(self):
        out = fig3.run_fig3a(scale=SCALE)
        for ds in ("movies", "products", "bird", "pdmx"):
            assert out.metrics[f"{ds}-T1.speedup_vs_original"] >= 1.0
            assert out.metrics[f"{ds}-T1.speedup_vs_nocache"] > 1.2

    def test_fig3b_runs_all_seven(self):
        out = fig3.run_fig3b(scale=SCALE)
        assert len([k for k in out.metrics if k.endswith(".ggr_s")]) == 7


class TestFig4:
    def test_shapes(self):
        out = fig4.run(scale=SCALE)
        for qid in ("movies-T3", "products-T3", "movies-T4", "products-T4"):
            assert out.metrics[f"{qid}.speedup_vs_nocache"] > 1.0
        assert out.metrics["movies-T3.n_llm_calls"] == 2


class TestFig5:
    def test_70b_ggr_wins(self):
        out = fig5.run(scale=SCALE)
        for ds in ("movies", "products", "bird", "pdmx"):
            assert out.metrics[f"{ds}-T1.speedup"] >= 1.0


class TestTable2:
    def test_ggr_dominates_everywhere(self):
        out = table2.run(scale=SCALE)
        for ds in ("movies", "products", "bird", "pdmx", "beer", "fever", "squad"):
            assert out.metrics[f"{ds}.ggr_phr"] >= out.metrics[f"{ds}.original_phr"]

    def test_big_uplift_on_join_datasets(self):
        out = table2.run(scale=SCALE)
        for ds in ("movies", "bird"):
            uplift = out.metrics[f"{ds}.ggr_phr"] - out.metrics[f"{ds}.original_phr"]
            assert uplift > 0.25


class TestTable3:
    def test_savings_positive_both_providers(self):
        out = table3.run(scale=SCALE)
        assert out.metrics["openai.savings"] > 0.15
        assert out.metrics["anthropic.savings"] > 0.05

    def test_original_gets_no_openai_hits(self):
        out = table3.run(scale=SCALE)
        assert out.metrics["openai.original_phr"] == pytest.approx(0.0, abs=0.02)


class TestTable4:
    def test_anthropic_beats_openai_savings(self):
        out = table4.run(scale=SCALE)
        for ds in ("movies", "bird", "fever"):
            assert (
                out.metrics[f"{ds}.anthropic_savings"]
                > out.metrics[f"{ds}.openai_savings"]
                > 0.0
            )


class TestTable5:
    def test_solver_fast_at_small_scale(self):
        out = table5.run(scale=SCALE)
        for ds in ("movies", "pdmx", "beer"):
            assert out.metrics[f"{ds}.solver_seconds"] < 5.0


class TestTable6:
    def test_ophr_dominates_and_ggr_close(self):
        rows = {"movies": 8, "bird": 10, "beer": 6, "squad": 6}
        out = table6.run(scale=SCALE, rows=rows)
        for ds in rows:
            if f"{ds}.ophr_phr" not in out.metrics:
                continue  # timed out: acceptable, OPHR is exponential
            assert out.metrics[f"{ds}.ophr_phr"] >= out.metrics[f"{ds}.ggr_phr"] - 1e-9
            assert out.metrics[f"{ds}.ggr_phr"] >= 0.8 * out.metrics[f"{ds}.ophr_phr"] - 0.02


class TestTable7:
    def test_1b_gains_smaller_than_8b(self):
        out7 = table7.run(scale=SCALE)
        out3 = fig3.run_fig3a(scale=SCALE)
        smaller = 0
        for ds in ("movies", "products", "bird", "pdmx", "beer"):
            if out7.metrics[f"{ds}.ratio"] <= out3.metrics[f"{ds}-T1.speedup_vs_original"] + 0.05:
                smaller += 1
        assert smaller >= 4  # the 1B gains shrink almost everywhere

    def test_phr_model_independent(self):
        out7 = table7.run(scale=SCALE)
        out2 = table2.run(scale=SCALE)
        for ds in ("movies", "bird"):
            assert out7.metrics[f"{ds}.ggr_phr"] == pytest.approx(
                out2.metrics[f"{ds}.ggr_phr"], abs=0.05
            )


class TestFig6:
    def test_fever_8b_large_positive_others_small(self):
        out = fig6.run(scale=SCALE, n_boot=2000)
        assert out.metrics["llama3-8b.fever.delta"] > 0.08
        for judge in ("llama3-70b", "gpt-4o"):
            assert abs(out.metrics[f"{judge}.fever.delta"]) < 0.08
        small = [
            abs(out.metrics[f"{judge}.{ds}.delta"])
            for judge in ("llama3-8b", "llama3-70b", "gpt-4o")
            for ds in ("movies", "products", "bird", "pdmx", "beer")
        ]
        assert sum(1 for d in small if d < 0.09) >= 13  # "within ~5%" claim


class TestAblations:
    def test_fd_never_hurts(self):
        out = ablations.run_fd(scale=SCALE)
        for ds in ("movies", "pdmx", "beer"):
            assert out.metrics[f"{ds}.phc_with"] >= out.metrics[f"{ds}.phc_without"] - 1

    def test_depth_monotone(self):
        # Greedy commitments can cost a sliver of PHC on tiny tables, so
        # allow 3% slack; at benchmark scales deeper is strictly better.
        out = ablations.run_early_stop(scale=SCALE)
        assert out.metrics["pdmx.phc@16,8"] >= 0.97 * out.metrics["pdmx.phc@0,0"]

    def test_fixed_orders_hierarchy(self):
        out = ablations.run_fixed_orders(scale=SCALE)
        for ds in ("movies", "products"):
            assert out.metrics[f"{ds}.ggr"] >= out.metrics[f"{ds}.original"]

    def test_memory_original_grows_with_cache(self):
        out = ablations.run_memory(scale=SCALE)
        assert out.metrics["orig_phr@4.0"] >= out.metrics["orig_phr@0.25"]
