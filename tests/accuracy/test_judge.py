"""Tests for the order-sensitive simulated judges."""

import pytest

from repro.accuracy.judge import JUDGES, JudgeSpec, SimulatedJudge
from repro.core.table import Cell


def make_cells(order):
    return tuple(Cell(f, f"v-{f}") for f in order)


def make_judge(bias=0.3, base=0.6, seed=0, n=400):
    spec = JudgeSpec(
        name="test-judge",
        base_accuracy={"ds": base},
        position_bias={"ds": bias},
    )
    labels = ["A" if i % 2 == 0 else "B" for i in range(n)]
    return SimulatedJudge(spec, "ds", labels, ("A", "B"), key_field="key", seed=seed)


class TestPositionFactor:
    def test_first_position(self):
        j = make_judge()
        assert j.position_factor(make_cells(["key", "x", "y"])) == -0.5

    def test_last_position(self):
        j = make_judge()
        assert j.position_factor(make_cells(["x", "y", "key"])) == 0.5

    def test_middle(self):
        j = make_judge()
        assert j.position_factor(make_cells(["x", "key", "y"])) == 0.0

    def test_missing_key_field(self):
        j = make_judge()
        assert j.position_factor(make_cells(["x", "y"])) == 0.0

    def test_single_field(self):
        j = make_judge()
        assert j.position_factor(make_cells(["key"])) == 0.0


class TestBehaviour:
    def test_probability_clamped(self):
        j = make_judge(bias=5.0, base=0.9)
        assert j.correct_probability(make_cells(["x", "key"])) <= 0.99
        j2 = make_judge(bias=5.0, base=0.1)
        assert j2.correct_probability(make_cells(["key", "x"])) >= 0.01

    def test_deterministic_answers(self):
        j = make_judge()
        cells = make_cells(["x", "key", "y"])
        a = [j.answerer("q", cells, i) for i in range(50)]
        b = [j.answerer("q", cells, i) for i in range(50)]
        assert a == b

    def test_answers_in_domain(self):
        j = make_judge()
        cells = make_cells(["key", "x"])
        answers = {j.answerer("q", cells, i) for i in range(100)}
        assert answers <= {"A", "B"}

    def test_positive_bias_prefers_key_last(self):
        j = make_judge(bias=0.4, base=0.6, n=2000)
        early = [j.answerer("q", make_cells(["key", "x", "y"]), i) for i in range(2000)]
        late = [j.answerer("q", make_cells(["x", "y", "key"]), i) for i in range(2000)]
        acc_early = sum(j.grade(early)) / 2000
        acc_late = sum(j.grade(late)) / 2000
        assert acc_late - acc_early > 0.2  # ~0.4 bias spread

    def test_zero_bias_order_insensitive(self):
        j = make_judge(bias=0.0, base=0.7, n=2000)
        early = [j.answerer("q", make_cells(["key", "x"]), i) for i in range(2000)]
        late = [j.answerer("q", make_cells(["x", "key"]), i) for i in range(2000)]
        acc_early = sum(j.grade(early)) / 2000
        acc_late = sum(j.grade(late)) / 2000
        assert abs(acc_late - acc_early) < 0.05

    def test_open_ended_wrong_answer_not_exact(self):
        spec = JudgeSpec("t", {"ds": 0.0}, {"ds": 0.0})
        j = SimulatedJudge(spec, "ds", ["truth"] * 10, (), "key", seed=0)
        answers = [j.answerer("q", make_cells(["key", "x"]), i) for i in range(10)]
        assert all(a != "truth" for a in answers)


class TestRegistry:
    def test_three_judges(self):
        assert set(JUDGES) == {"llama3-8b", "llama3-70b", "gpt-4o"}

    def test_fever_8b_bias_strongest(self):
        """Fig. 6: only Llama-3-8B on FEVER shows a large ordering effect."""
        b8 = JUDGES["llama3-8b"].bias_for("fever")
        b70 = JUDGES["llama3-70b"].bias_for("fever")
        bgpt = JUDGES["gpt-4o"].bias_for("fever")
        assert b8 > 3 * abs(b70)
        assert b8 > 3 * abs(bgpt)

    def test_bigger_models_more_accurate(self):
        for ds in ("movies", "fever", "beer"):
            assert (
                JUDGES["gpt-4o"].accuracy_for(ds)
                > JUDGES["llama3-70b"].accuracy_for(ds)
                > JUDGES["llama3-8b"].accuracy_for(ds)
            )

    def test_default_fallbacks(self):
        spec = JUDGES["llama3-8b"]
        assert spec.accuracy_for("unknown-ds") == spec.default_accuracy
        assert spec.bias_for("unknown-ds") == spec.default_bias
