"""Tests for the bootstrap harness."""

import numpy as np
import pytest

from repro.accuracy.bootstrap import bootstrap_accuracy, compare_orderings
from repro.errors import ReproError


class TestBootstrapAccuracy:
    def test_mean_close_to_p_hat(self):
        correct = [True] * 70 + [False] * 30
        dist = bootstrap_accuracy(correct, n_boot=5000, seed=0)
        assert dist.mean() == pytest.approx(0.7, abs=0.01)

    def test_all_correct_degenerate(self):
        dist = bootstrap_accuracy([True] * 50, n_boot=100, seed=0)
        assert (dist == 1.0).all()

    def test_spread_shrinks_with_n(self):
        small = bootstrap_accuracy([True, False] * 10, n_boot=5000, seed=0)
        large = bootstrap_accuracy([True, False] * 500, n_boot=5000, seed=0)
        assert large.std() < small.std()

    def test_deterministic(self):
        c = [True] * 30 + [False] * 20
        a = bootstrap_accuracy(c, n_boot=100, seed=5)
        b = bootstrap_accuracy(c, n_boot=100, seed=5)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ReproError):
            bootstrap_accuracy([], n_boot=10)
        with pytest.raises(ReproError):
            bootstrap_accuracy([True], n_boot=0)


class TestCompareOrderings:
    def test_detects_improvement(self):
        a = [True] * 60 + [False] * 40
        b = [True] * 75 + [False] * 25
        cmp = compare_orderings(a, b, n_boot=5000, seed=0)
        assert cmp.median_diff == pytest.approx(0.15, abs=0.03)

    def test_no_difference(self):
        c = [True] * 80 + [False] * 20
        cmp = compare_orderings(c, c, n_boot=5000, seed=0)
        assert abs(cmp.median_diff) < 0.02

    def test_ci_contains_median(self):
        c = [True] * 50 + [False] * 50
        cmp = compare_orderings(c, c, n_boot=5000, seed=0)
        lo, hi = cmp.ci_a
        assert lo <= cmp.median_a <= hi

    def test_ci_validation(self):
        with pytest.raises(ReproError):
            compare_orderings([True], [True], ci=1.5)
