"""Randomized equivalence: compiled fast paths vs. the string reference.

The compiled engines are rewrites of the hot paths, not re-derivations of
the algorithm — so the contract is *exact* equivalence: identical PHC/PHR
numbers, identical GGR schedules (row order, per-row field orders, cell
values), identical statistics and mined FDs, across table shapes, FD
configurations, and ``GGRConfig`` variants. These tests draw randomized
tables with heavy value duplication (so grouping, FDs, fallbacks, and
tie-breaks all fire) and assert the two paths agree cell-for-cell.
"""

import random

import pytest

from repro.core.compiled import HAVE_NUMPY
from repro.core.fd import FunctionalDependencies, mine_fds
from repro.core.ggr import GGRConfig, ggr
from repro.core.ophr import ophr
from repro.core.partitioned import PARTITION_MODES, partitioned_reorder
from repro.core.phc import per_row_hits, phc, phr, prefix_hit_tokens
from repro.core.stats import TableStats
from repro.core.table import ReorderTable

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

VALUE_POOLS = (
    ["a", "bb", "ccc", "dddd"],
    ["x", "x", "yy", "yy", "zzz"],  # duplication-heavy
    ["alpha", "beta", "gamma-long-value", ""],
)


def random_table(rng: random.Random) -> ReorderTable:
    n = rng.randint(1, 28)
    m = rng.randint(1, 5)
    fields = [f"f{j}" for j in range(m)]
    cols = []
    for j in range(m):
        pool = rng.choice(VALUE_POOLS)
        # Small effective cardinality so groups repeat; occasionally unique.
        k = rng.randint(1, len(pool))
        cols.append([rng.choice(pool[:k]) for _ in range(n)])
    # An FD-friendly pair: column 0 determines a synthesized column when
    # m >= 2 (value derived from column 0's value).
    if m >= 2 and rng.random() < 0.5:
        cols[1] = [f"dep-{v}" for v in cols[0]]
    rows = list(zip(*cols)) if m else []
    return ReorderTable(fields, rows)


def random_fds(rng: random.Random, table: ReorderTable):
    roll = rng.random()
    if roll < 0.4 or table.n_fields < 2:
        return None
    if roll < 0.7:
        return FunctionalDependencies.from_groups([list(table.fields[:2])])
    return mine_fds(table, sample_rows=0)


CONFIGS = [
    GGRConfig(),
    GGRConfig(max_row_depth=10, max_col_depth=10),
    GGRConfig(max_row_depth=0, max_col_depth=0),
    GGRConfig(hitcount_threshold=20.0),
    GGRConfig(square_fd_lengths=False),
    GGRConfig(stats_score_mode="paper"),
    GGRConfig(max_row_depth=1, max_col_depth=1, stats_score_mode="paper"),
]


def assert_same_schedule(s1, s2):
    assert [r.row_id for r in s1.rows] == [r.row_id for r in s2.rows]
    for a, b in zip(s1.rows, s2.rows):
        assert a.cells == b.cells


class TestGGREquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_tables_all_configs(self, seed):
        rng = random.Random(seed)
        table = random_table(rng)
        fds = random_fds(rng, table)
        for base in CONFIGS:
            cfg_py = GGRConfig(**{**base.__dict__, "engine": "python"})
            cfg_c = GGRConfig(**{**base.__dict__, "engine": "compiled"})
            est_py, sched_py, rep_py = ggr(table, fds=fds, config=cfg_py)
            est_c, sched_c, rep_c = ggr(table, fds=fds, config=cfg_c)
            assert est_py == est_c
            assert_same_schedule(sched_py, sched_c)
            assert rep_py.groups_chosen == rep_c.groups_chosen
            assert rep_py.fallback_blocks == rep_c.fallback_blocks
            assert rep_py.fallback_rows == rep_c.fallback_rows
            assert rep_py.recursion_steps == rep_c.recursion_steps
            # Identical exact PHC is the acceptance bar.
            assert phc(sched_py) == phc(sched_c)

    def test_auto_engine_matches_python(self):
        rng = random.Random(99)
        table = random_table(rng)
        est_a, sched_a, _ = ggr(table, config=GGRConfig(engine="auto"))
        est_p, sched_p, _ = ggr(table, config=GGRConfig(engine="python"))
        assert est_a == est_p
        assert_same_schedule(sched_a, sched_p)

    def test_fastpath_env_disables_compiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "0")
        table = random_table(random.Random(3))
        est, sched, _ = ggr(table)  # runs the reference path
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "1")
        est2, sched2, _ = ggr(table)
        assert est == est2
        assert_same_schedule(sched, sched2)


class TestMetricEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("mode", ["cell", "value"])
    def test_phc_phr_fast_vs_reference(self, seed, mode):
        rng = random.Random(seed)
        table = random_table(rng)
        _, sched, _ = ggr(table, fds=random_fds(rng, table))
        # Reference path: plain cell-row sequences never take the fast path.
        ref_rows = [r.cells for r in sched.rows]
        assert phc(sched, mode=mode) == phc(ref_rows, mode=mode)
        assert per_row_hits(sched, mode=mode) == per_row_hits(ref_rows, mode=mode)
        assert prefix_hit_tokens(sched, mode=mode) == prefix_hit_tokens(
            ref_rows, mode=mode
        )
        assert phr(sched, mode=mode) == phr(ref_rows, mode=mode)

    def test_value_mode_differs_from_cell_mode_when_fields_swap(self):
        # Same value under different fields: the fast path must respect
        # the mode distinction exactly like the reference.
        t = ReorderTable(("a", "b"), [("v", "w"), ("w", "v")])
        _, sched, _ = ggr(t, config=GGRConfig(max_row_depth=9, max_col_depth=9))
        ref = [r.cells for r in sched.rows]
        assert phc(sched, "value") == phc(ref, "value")
        assert phc(sched, "cell") == phc(ref, "cell")

    def test_custom_token_len_uses_reference(self):
        t = ReorderTable(("a",), [("xx",), ("xx",)])
        _, sched, _ = ggr(t)
        custom = prefix_hit_tokens(sched, token_len=lambda c: 1)
        assert custom == (1, 2)


class TestStatsEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_compute_paths_identical(self, seed):
        table = random_table(random.Random(seed))
        fast = TableStats._compute_compiled(table)
        ref = TableStats._compute_python(table)
        assert fast == ref

    def test_empty_table(self):
        t = ReorderTable(("a", "b"), [])
        assert TableStats._compute_compiled(t) == TableStats._compute_python(t)


class TestMineFdsEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("tolerance", [0.0, 0.2])
    def test_mined_edges_identical(self, seed, tolerance, monkeypatch):
        table = random_table(random.Random(seed))
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "1")
        fast = mine_fds(table, tolerance=tolerance, seed=seed)
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "0")
        ref = mine_fds(table, tolerance=tolerance, seed=seed)
        assert fast.edges() == ref.edges()

    def test_sampled_rows_identical(self, monkeypatch):
        table = random_table(random.Random(42))
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "1")
        fast = mine_fds(table, sample_rows=max(2, table.n_rows // 2), seed=7)
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "0")
        ref = mine_fds(table, sample_rows=max(2, table.n_rows // 2), seed=7)
        assert fast.edges() == ref.edges()


class TestOphrEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_ophr_paths_identical(self, seed, monkeypatch):
        rng = random.Random(seed)
        t = ReorderTable(
            ("a", "b"),
            [
                (rng.choice(["x", "yy"]), rng.choice(["p", "qq"]))
                for _ in range(rng.randint(2, 6))
            ],
        )
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "1")
        score_fast, sched_fast = ophr(t)
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "0")
        score_ref, sched_ref = ophr(t)
        assert score_fast == score_ref
        assert_same_schedule(sched_fast, sched_ref)


class TestPartitionedEquivalence:
    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_parallel_matches_sequential(self, mode):
        rows = [
            (f"id{i:02d}", f"grp{i % 3}", f"desc-{i % 3}" * 2) for i in range(24)
        ]
        t = ReorderTable(("uid", "grp", "desc"), rows)
        seq = partitioned_reorder(t, 4, mode=mode, parallel=False)
        par = partitioned_reorder(t, 4, mode=mode, parallel=True, max_workers=2)
        assert par.n_workers == 2
        assert seq.exact_phc == par.exact_phc
        assert_same_schedule(seq.schedule, par.schedule)

    def test_parallel_single_partition_degrades(self):
        t = ReorderTable(("a",), [("x",), ("y",)])
        res = partitioned_reorder(t, 1, parallel=True, max_workers=4)
        assert res.n_workers == 1
