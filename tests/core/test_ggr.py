"""Tests for Greedy Group Recursion (Algorithm 1)."""

import pytest

from repro.core.fd import FunctionalDependencies
from repro.core.ggr import GGRConfig, ggr
from repro.core.ophr import ophr
from repro.core.ordering import RequestSchedule
from repro.core.phc import phc
from repro.core.table import ReorderTable
from repro.errors import SolverError


def fig1a_table(n=8, m=4):
    fields = [f"f{i}" for i in range(m)]
    rows = [tuple([f"id{r:03d}"] + ["shared"] * (m - 1)) for r in range(n)]
    return ReorderTable(fields, rows)


def fig1b_table(x=4, m=3):
    fields = [f"f{i}" for i in range(m)]
    rows, uid = [], 0
    for g in range(m):
        for _ in range(x):
            row = []
            for c in range(m):
                if c == g:
                    row.append(f"GRP{g}")
                else:
                    row.append(f"uniq{uid:04d}")
                    uid += 1
            rows.append(tuple(row))
    return ReorderTable(fields, rows)


class TestGGRBasics:
    def test_empty_table(self):
        est, sched, _ = ggr(ReorderTable(("a",), []))
        assert est == 0.0 and len(sched) == 0

    def test_single_row(self):
        t = ReorderTable(("a", "b"), [("x", "y")])
        est, sched, _ = ggr(t)
        assert est == 0.0
        sched.validate_against(t)

    def test_single_column(self):
        t = ReorderTable(("a",), [("v",), ("w",), ("v",)])
        est, sched, _ = ggr(t)
        assert est == 1.0
        assert phc(sched) == 1

    def test_schedule_is_valid_permutation(self):
        t = fig1b_table()
        _, sched, _ = ggr(t)
        sched.validate_against(t)

    def test_invalid_config_rejected(self):
        with pytest.raises(SolverError):
            ggr(fig1a_table(), config=GGRConfig(max_row_depth=-1))
        with pytest.raises(SolverError):
            ggr(fig1a_table(), config=GGRConfig(hitcount_threshold=-5))


class TestGGRQuality:
    def test_recovers_fig1a(self):
        n, m = 8, 4
        t = fig1a_table(n, m)
        est, sched, _ = ggr(t)
        expected = (n - 1) * (m - 1) * len("shared") ** 2
        assert phc(sched) == expected
        assert phc(RequestSchedule.identity(t)) == 0

    def test_recovers_fig1b_m_fold_gap(self):
        x, m = 4, 3
        t = fig1b_table(x, m)
        _, sched, _ = ggr(t)
        got = phc(sched)
        fixed_best = (x - 1) * len("GRP0") ** 2
        assert got == m * fixed_best

    def test_estimate_equals_exact_without_fallback(self):
        # Deep-enough limits + exact FDs: the greedy estimate must equal the
        # recomputed PHC (DESIGN.md verification strategy).
        t = fig1b_table(4, 3)
        cfg = GGRConfig(max_row_depth=10, max_col_depth=10)
        est, sched, report = ggr(t, config=cfg)
        assert est == pytest.approx(phc(sched))

    def test_matches_ophr_on_small_tables(self):
        t = ReorderTable(
            ("a", "b"),
            [("x", "p"), ("y", "p"), ("x", "q"), ("y", "q"), ("x", "p")],
        )
        opt, _ = ophr(t)
        _, sched, _ = ggr(t, config=GGRConfig(max_row_depth=10, max_col_depth=10))
        assert phc(sched) <= opt
        assert phc(sched) >= 0.8 * opt  # near-optimal on this easy instance

    def test_never_worse_than_original_on_grouped_data(self):
        t = fig1a_table(10, 5)
        _, sched, _ = ggr(t)
        assert phc(sched) >= phc(RequestSchedule.identity(t))


class TestFunctionalDependencyUse:
    def make_fd_table(self):
        # key <-> name mutual FD; note is unique per row.
        rows = []
        for i in range(12):
            k = f"key{i % 3}"
            rows.append((k, f"name-{k}-long-value", f"note{i:02d}"))
        return ReorderTable(("key", "name", "note"), rows)

    def test_fd_fields_ride_along_in_prefix(self):
        t = self.make_fd_table()
        fds = FunctionalDependencies.from_groups([["key", "name"]])
        _, sched, report = ggr(t, fds=fds)
        # Every row's first two cells must be the key+name pair (in the
        # chosen order), so the FD field is adjacent to its determinant.
        for row in sched.rows:
            leading = {c.field for c in row.cells[:2]}
            assert leading == {"key", "name"}

    def test_fds_do_not_change_validity(self):
        t = self.make_fd_table()
        fds = FunctionalDependencies.from_groups([["key", "name"]])
        _, sched, _ = ggr(t, fds=fds)
        sched.validate_against(t)

    def test_fds_raise_phc_on_fd_heavy_table(self):
        t = self.make_fd_table()
        fds = FunctionalDependencies.from_groups([["key", "name"]])
        _, with_fd, _ = ggr(t, fds=fds)
        _, without, _ = ggr(t, fds=None)
        assert phc(with_fd) >= phc(without)

    def test_estimate_exact_with_exact_fds(self):
        t = self.make_fd_table()
        fds = FunctionalDependencies.from_groups([["key", "name"]])
        cfg = GGRConfig(max_row_depth=10, max_col_depth=10)
        est, sched, _ = ggr(t, fds=fds, config=cfg)
        assert est == pytest.approx(phc(sched))

    def test_inaccurate_fd_still_valid_schedule(self):
        # Declare an FD that does NOT hold; schedule must stay a permutation,
        # PHC just won't benefit.
        t = ReorderTable(
            ("a", "b"),
            [("x", "1"), ("x", "2"), ("x", "3"), ("y", "9")],
        )
        fds = FunctionalDependencies()
        fds.add("a", "b")
        _, sched, _ = ggr(t, fds=fds)
        sched.validate_against(t)


class TestEarlyStopping:
    def big_distinct_table(self):
        return ReorderTable(
            ("a", "b"),
            [(f"a{i}", f"b{i}") for i in range(50)],
        )

    def test_all_distinct_falls_back(self):
        _, sched, report = ggr(self.big_distinct_table())
        assert report.fallback_blocks >= 1
        assert report.fallback_rows == 50

    def test_zero_depth_means_pure_fallback(self):
        t = fig1b_table(4, 3)
        cfg = GGRConfig(max_row_depth=0, max_col_depth=0)
        est, sched, report = ggr(t, config=cfg)
        sched.validate_against(t)

    def test_threshold_triggers_fallback(self):
        t = fig1b_table(4, 3)
        cfg = GGRConfig(hitcount_threshold=1e9)
        _, sched, report = ggr(t, config=cfg)
        assert report.fallback_blocks >= 1
        sched.validate_against(t)

    def test_deeper_limits_never_hurt(self):
        t = fig1b_table(5, 4)
        shallow = GGRConfig(max_row_depth=1, max_col_depth=1)
        deep = GGRConfig(max_row_depth=12, max_col_depth=12)
        _, s_shallow, _ = ggr(t, config=shallow)
        _, s_deep, _ = ggr(t, config=deep)
        assert phc(s_deep) >= phc(s_shallow)

    def test_report_counts_steps(self):
        _, _, report = ggr(fig1b_table(3, 3))
        assert report.recursion_steps >= 1
        assert report.groups_chosen


class TestPaperErrataModes:
    def test_unsquared_fd_lengths_still_valid(self):
        t = ReorderTable(
            ("key", "name", "x"),
            [(f"k{i % 2}", f"n{i % 2}", str(i)) for i in range(8)],
        )
        fds = FunctionalDependencies.from_groups([["key", "name"]])
        cfg = GGRConfig(square_fd_lengths=False)
        _, sched, _ = ggr(t, fds=fds, config=cfg)
        sched.validate_against(t)

    def test_paper_stats_mode(self):
        t = ReorderTable(
            ("a", "b"),
            [(f"a{i}", f"b{i}") for i in range(10)],
        )
        cfg = GGRConfig(stats_score_mode="paper")
        _, sched, _ = ggr(t, config=cfg)
        sched.validate_against(t)
