"""Tests for OPHR: base cases, optimality vs brute force, safety limits."""

import pytest

from repro.core.ophr import brute_force_optimal, ophr
from repro.core.phc import phc
from repro.core.table import ReorderTable
from repro.errors import SolverError


class TestBaseCases:
    def test_single_row(self):
        t = ReorderTable(("a", "b"), [("x", "y")])
        score, sched = ophr(t)
        assert score == 0
        sched.validate_against(t)

    def test_single_field_groups_duplicates(self):
        t = ReorderTable(("a",), [("x",), ("y",), ("x",), ("x",)])
        score, sched = ophr(t)
        assert score == 2 * len("x") ** 2
        values = [row.cells[0].value for row in sched.rows]
        assert values == sorted(values)

    def test_empty_table(self):
        t = ReorderTable(("a",), [])
        score, sched = ophr(t)
        assert score == 0 and len(sched) == 0

    def test_all_identical_rows(self):
        t = ReorderTable(("a", "b"), [("v", "w")] * 4)
        score, sched = ophr(t)
        assert score == 3 * (1 + 1)


class TestOptimality:
    def test_matches_brute_force_fig1a(self):
        t = ReorderTable(
            ("uniq", "c1", "c2"),
            [(f"u{i}", "ss", "tt") for i in range(3)],
        )
        opt_score, _ = ophr(t)
        bf_score, _ = brute_force_optimal(t)
        assert opt_score == bf_score == 2 * (4 + 4)

    def test_matches_brute_force_mixed(self):
        t = ReorderTable(
            ("a", "b"),
            [("x", "p"), ("y", "p"), ("x", "q"), ("y", "q")],
        )
        opt_score, sched = ophr(t)
        bf_score, _ = brute_force_optimal(t)
        assert opt_score == bf_score
        assert phc(sched) == opt_score

    def test_reported_score_matches_schedule(self):
        t = ReorderTable(
            ("a", "b", "c"),
            [("x", "m", "1"), ("x", "n", "1"), ("y", "m", "2"), ("x", "m", "2")],
        )
        score, sched = ophr(t)
        assert phc(sched) == score
        sched.validate_against(t)

    def test_beats_identity_on_structured_table(self):
        from repro.core.ordering import RequestSchedule

        t = ReorderTable(
            ("id", "grp"),
            [("a", "G"), ("b", "G"), ("c", "G"), ("d", "H"), ("e", "H")],
        )
        score, _ = ophr(t)
        assert score > phc(RequestSchedule.identity(t))


class TestLimits:
    def test_row_limit(self):
        t = ReorderTable(("a",), [(str(i),) for i in range(10)])
        with pytest.raises(SolverError):
            ophr(t, max_rows=5)

    def test_field_limit(self):
        t = ReorderTable(tuple(f"f{i}" for i in range(8)), [tuple("x" * 8)])
        with pytest.raises(SolverError):
            ophr(t, max_fields=4)

    def test_time_limit(self):
        # Dense distinct-value table forces heavy recursion.
        t = ReorderTable(
            tuple(f"f{i}" for i in range(6)),
            [tuple(f"{r}{c}" for c in range(6)) for r in range(12)],
        )
        with pytest.raises(SolverError):
            ophr(t, max_rows=64, max_fields=16, time_limit_s=0.001)

    def test_brute_force_guard(self):
        t = ReorderTable(
            tuple(f"f{i}" for i in range(4)),
            [tuple(f"{r}{c}" for c in range(4)) for r in range(6)],
        )
        with pytest.raises(SolverError):
            brute_force_optimal(t, max_schedules=1000)
