"""Tests for functional dependencies and FD mining."""

from repro.core.fd import FunctionalDependencies, mine_fds
from repro.core.table import ReorderTable


class TestFunctionalDependencies:
    def test_add_and_closure(self):
        fds = FunctionalDependencies()
        fds.add("a", "b")
        fds.add("b", "c")
        assert fds.determined("a") == frozenset({"b", "c"})
        assert fds.determined("b") == frozenset({"c"})
        assert fds.determined("c") == frozenset()

    def test_self_edge_ignored(self):
        fds = FunctionalDependencies()
        fds.add("a", "a")
        assert len(fds) == 0

    def test_group_is_mutual(self):
        fds = FunctionalDependencies.from_groups([["x", "y", "z"]])
        for f in "xyz":
            assert fds.determined(f) == frozenset(set("xyz") - {f})

    def test_cycle_closure_excludes_self(self):
        fds = FunctionalDependencies()
        fds.add("a", "b")
        fds.add("b", "a")
        assert fds.determined("a") == frozenset({"b"})

    def test_restrict(self):
        fds = FunctionalDependencies.from_groups([["a", "b", "c"]])
        sub = fds.restrict(["a", "b"])
        assert sub.determined("a") == frozenset({"b"})
        assert sub.determined("c") == frozenset()

    def test_bool_and_len(self):
        fds = FunctionalDependencies()
        assert not fds
        fds.add("a", "b")
        assert fds and len(fds) == 1

    def test_edges_sorted(self):
        fds = FunctionalDependencies()
        fds.add("b", "a")
        fds.add("a", "b")
        assert fds.edges() == [("a", "b"), ("b", "a")]


class TestMineFds:
    def make_table(self):
        # key determines name; name determines key (1:1); text is unique.
        rows = []
        for i in range(40):
            k = f"k{i % 5}"
            rows.append((k, f"name-of-{k}", f"unique-text-{i}"))
        return ReorderTable(("key", "name", "text"), rows)

    def test_finds_mutual_fd(self):
        fds = mine_fds(self.make_table(), sample_rows=0)
        assert "name" in fds.determined("key")
        assert "key" in fds.determined("name")

    def test_unique_columns_not_determinants(self):
        fds = mine_fds(self.make_table(), sample_rows=0)
        assert fds.determined("text") == frozenset()

    def test_violations_break_fd(self):
        rows = [("a", "1"), ("a", "2"), ("b", "3")]
        t = ReorderTable(("x", "y"), rows)
        fds = mine_fds(t, sample_rows=0)
        assert "y" not in fds.determined("x")

    def test_soft_fd_with_tolerance(self):
        rows = [("a", "1")] * 30 + [("a", "2")] + [("b", "3")] * 10
        t = ReorderTable(("x", "y"), rows)
        strict = mine_fds(t, sample_rows=0, tolerance=0.0)
        soft = mine_fds(t, sample_rows=0, tolerance=0.1)
        assert "y" not in strict.determined("x")
        assert "y" in soft.determined("x")

    def test_empty_and_single_column(self):
        assert len(mine_fds(ReorderTable(("a",), [("1",)]))) == 0
        assert len(mine_fds(ReorderTable(("a", "b"), []))) == 0

    def test_sampling_is_deterministic(self):
        t = self.make_table()
        a = mine_fds(t, sample_rows=10, seed=7).edges()
        b = mine_fds(t, sample_rows=10, seed=7).edges()
        assert a == b

    def test_cardinality_pruning(self):
        # a -> b cannot hold when a has fewer distinct values than b.
        rows = [("a", str(i)) for i in range(10)]
        t = ReorderTable(("x", "y"), rows)
        fds = mine_fds(t, sample_rows=0)
        assert "y" not in fds.determined("x")
