"""Tests for fixed-field-order baselines."""

import pytest

from repro.core.fixed import (
    best_fixed_field_schedule,
    fixed_field_schedule,
    original_schedule,
    stats_field_order,
)
from repro.core.ordering import RequestSchedule
from repro.core.phc import phc
from repro.core.table import ReorderTable
from repro.errors import SolverError


def make_table():
    return ReorderTable(
        ("uniq", "dup"),
        [("u3", "shared"), ("u1", "shared"), ("u2", "other")],
    )


class TestOriginal:
    def test_identity(self):
        t = make_table()
        sched = original_schedule(t)
        assert sched.row_ids() == [0, 1, 2]
        assert sched.rows[0].fields() == ("uniq", "dup")


class TestFixedFieldSchedule:
    def test_explicit_order_applied_to_all_rows(self):
        t = make_table()
        sched = fixed_field_schedule(t, ["dup", "uniq"], sort_rows=False)
        for row in sched.rows:
            assert row.fields() == ("dup", "uniq")

    def test_sort_rows_groups_duplicates(self):
        t = make_table()
        sched = fixed_field_schedule(t, ["dup", "uniq"], sort_rows=True)
        dups = [row.cells[0].value for row in sched.rows]
        assert dups == sorted(dups)
        assert phc(sched) > 0

    def test_default_order_is_stats_driven(self):
        t = make_table()
        assert stats_field_order(t)[0] == "dup"
        sched = fixed_field_schedule(t)
        assert sched.rows[0].fields()[0] == "dup"

    def test_bad_order_rejected(self):
        t = make_table()
        with pytest.raises(SolverError):
            fixed_field_schedule(t, ["dup"])
        with pytest.raises(SolverError):
            fixed_field_schedule(t, ["dup", "nope"])


class TestBestFixed:
    def test_exhaustive_beats_identity(self):
        t = ReorderTable(
            ("uniq", "c1", "c2"),
            [(f"u{i}", "ss", "tt") for i in range(4)],
        )
        score, sched = best_fixed_field_schedule(t)
        assert score == 3 * (4 + 4)
        assert score > phc(RequestSchedule.identity(t))

    def test_hill_climb_path(self):
        # > max_exhaustive_fields forces the greedy path.
        fields = tuple(f"f{i}" for i in range(7))
        rows = [tuple(["dup"] * 6 + [f"u{i}"]) for i in range(5)]
        t = ReorderTable(fields, rows)
        score, sched = best_fixed_field_schedule(t, max_exhaustive_fields=3)
        assert score == 4 * 6 * len("dup") ** 2
        sched.validate_against(t)

    def test_empty_table(self):
        t = ReorderTable(("a",), [])
        score, sched = best_fixed_field_schedule(t)
        assert score == 0 and len(sched) == 0

    def test_fixed_cannot_beat_per_row_on_fig1b(self):
        from tests.core.test_ggr import fig1b_table
        from repro.core.ggr import ggr

        t = fig1b_table(4, 3)
        fixed_score, _ = best_fixed_field_schedule(t)
        _, ggr_sched, _ = ggr(t)
        assert phc(ggr_sched) > fixed_score
