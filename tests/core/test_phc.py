"""Unit tests for the PHC objective (paper Eq. 1-2) including the two
worst-case constructions from the §3.2 case study (Fig. 1a / Fig. 1b)."""

import pytest

from repro.core.ordering import RequestSchedule
from repro.core.phc import (
    hit,
    matched_prefix_length,
    per_row_hits,
    phc,
    phr,
    prefix_hit_tokens,
)
from repro.core.table import Cell, ReorderTable


def cells(*pairs):
    return tuple(Cell(f, v) for f, v in pairs)


class TestMatchedPrefix:
    def test_full_match(self):
        a = cells(("f", "x"), ("g", "y"))
        assert matched_prefix_length(a, a) == 2

    def test_no_match(self):
        a = cells(("f", "x"), ("g", "y"))
        b = cells(("f", "z"), ("g", "y"))
        assert matched_prefix_length(a, b) == 0

    def test_stops_at_first_mismatch(self):
        a = cells(("f", "x"), ("g", "y"), ("h", "z"))
        b = cells(("f", "x"), ("g", "w"), ("h", "z"))
        assert matched_prefix_length(a, b) == 1

    def test_cell_mode_requires_field_match(self):
        a = cells(("f", "x"),)
        b = cells(("g", "x"),)
        assert matched_prefix_length(a, b, mode="cell") == 0
        assert matched_prefix_length(a, b, mode="value") == 1

    def test_different_row_lengths(self):
        a = cells(("f", "x"),)
        b = cells(("f", "x"), ("g", "y"))
        assert matched_prefix_length(a, b) == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            matched_prefix_length(cells(), cells(), mode="fuzzy")


class TestHit:
    def test_squared_lengths(self):
        a = cells(("f", "abc"), ("g", "de"), ("h", "zz"))
        b = cells(("f", "abc"), ("g", "de"), ("h", "xx"))
        assert hit(a, b) == 9 + 4

    def test_empty_prev(self):
        assert hit(cells(), cells(("f", "x"))) == 0

    def test_substring_is_not_a_match(self):
        # Eq. 2: exact match only, substrings never count.
        a = cells(("f", "abcd"),)
        b = cells(("f", "abc"),)
        assert hit(a, b) == 0


class TestPHC:
    def test_first_row_is_cold_miss(self):
        rows = [cells(("f", "x"))]
        assert phc(rows) == 0

    def test_identical_rows(self):
        row = cells(("f", "ab"), ("g", "c"))
        assert phc([row, row, row]) == 2 * (4 + 1)

    def test_accepts_schedule_object(self):
        t = ReorderTable(("f", "g"), [("x", "y"), ("x", "y")])
        sched = RequestSchedule.identity(t)
        assert phc(sched) == 1 + 1

    def test_per_row_hits(self):
        row = cells(("f", "ab"),)
        other = cells(("f", "cd"),)
        assert per_row_hits([row, row, other]) == [0, 4, 0]

    def test_empty_schedule(self):
        assert phc([]) == 0


class TestFig1aScenario:
    """First field unique, remaining m-1 fields constant (Fig. 1a)."""

    @staticmethod
    def make(n=6, m=4):
        fields = [f"f{i}" for i in range(m)]
        rows = [tuple([f"id{r}"] + ["shared"] * (m - 1)) for r in range(n)]
        return ReorderTable(fields, rows)

    def test_original_order_gets_zero(self):
        t = self.make()
        assert phc(RequestSchedule.identity(t)) == 0

    def test_moving_unique_field_last_recovers_hits(self):
        n, m = 6, 4
        t = self.make(n, m)
        order = list(range(1, m)) + [0]
        sched = RequestSchedule.from_orders(t, range(n), [order] * n)
        # (n-1) rows x (m-1) shared cells of len("shared")^2 each.
        assert phc(sched) == (n - 1) * (m - 1) * len("shared") ** 2


class TestFig1bScenario:
    """Non-overlapping groups G1..Gm across fields (Fig. 1b): a fixed order
    captures one group; per-row ordering captures all m."""

    @staticmethod
    def make(x=3, m=3):
        # 3x rows; rows [0,x) share a value in field0, [x,2x) in field1, etc.
        fields = [f"f{i}" for i in range(m)]
        rows = []
        uid = 0
        for g in range(m):
            for k in range(x):
                row = []
                for c in range(m):
                    if c == g:
                        row.append(f"G{g}")
                    else:
                        row.append(f"u{uid}")
                        uid += 1
                rows.append(tuple(row))
        return ReorderTable(fields, rows)

    def test_fixed_order_capped_at_one_group(self):
        x, m = 3, 3
        t = self.make(x, m)
        fixed = RequestSchedule.from_orders(
            t, range(t.n_rows), [list(range(m))] * t.n_rows
        )
        assert phc(fixed) == (x - 1) * len("G0") ** 2

    def test_per_row_order_captures_every_group(self):
        x, m = 3, 3
        t = self.make(x, m)
        row_order, field_orders = [], []
        for g in range(m):
            order = [g] + [c for c in range(m) if c != g]
            for k in range(x):
                row_order.append(g * x + k)
                field_orders.append(order)
        sched = RequestSchedule.from_orders(t, row_order, field_orders)
        assert phc(sched) == m * (x - 1) * len("G0") ** 2


class TestPHR:
    def test_phr_bounds(self):
        t = ReorderTable(("f",), [("aaaa",), ("aaaa",), ("bbbb",)])
        rate = phr(RequestSchedule.identity(t))
        assert 0.0 < rate < 1.0

    def test_phr_zero_when_nothing_matches(self):
        t = ReorderTable(("f",), [("a",), ("b",), ("c",)])
        assert phr(RequestSchedule.identity(t)) == 0.0

    def test_phr_empty_schedule(self):
        assert phr([]) == 0.0

    def test_hit_tokens_monotone_in_duplication(self):
        dup = ReorderTable(("f", "g"), [("aaaa", "bbbb")] * 4)
        uniq = ReorderTable(("f", "g"), [(f"a{i}aa", f"b{i}bb") for i in range(4)])
        hits_dup, _ = prefix_hit_tokens(RequestSchedule.identity(dup))
        hits_uniq, _ = prefix_hit_tokens(RequestSchedule.identity(uniq))
        assert hits_dup > hits_uniq == 0

    def test_custom_token_len(self):
        t = ReorderTable(("f",), [("ab",), ("ab",)])
        hits, total = prefix_hit_tokens(
            RequestSchedule.identity(t), token_len=lambda c: 10
        )
        assert (hits, total) == (10, 20)
