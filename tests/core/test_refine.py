"""Tests for the local-search schedule refiner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ggr import ggr
from repro.core.ordering import RequestSchedule
from repro.core.phc import phc
from repro.core.refine import refine
from repro.core.reorder import reorder
from repro.core.table import Cell, OrderedRow, ReorderTable


class TestRealignment:
    def test_fixes_misaligned_field_order(self):
        # Two identical rows scheduled with different field orders: the
        # identity schedule scores 0, the refiner realigns row 2.
        t = ReorderTable(("a", "b"), [("x", "y"), ("x", "y")])
        bad = RequestSchedule(
            rows=[
                OrderedRow(0, (Cell("a", "x"), Cell("b", "y"))),
                OrderedRow(1, (Cell("b", "y"), Cell("a", "x"))),
            ],
            source_fields=t.fields,
        )
        assert phc(bad) == 0
        res = refine(bad, table=t)
        assert res.phc_after == 2
        assert res.field_realignments == 1

    def test_never_decreases(self):
        t = ReorderTable(("a", "b"), [("x", "y"), ("z", "y"), ("x", "y")])
        sched = RequestSchedule.identity(t)
        res = refine(sched, table=t)
        assert res.phc_after >= res.phc_before

    def test_row_relocation(self):
        # Identity order interleaves two groups; relocation reunites them.
        t = ReorderTable(
            ("g", "u"),
            [("A", "1"), ("B", "2"), ("A", "3"), ("B", "4"), ("A", "5")],
        )
        res = refine(RequestSchedule.identity(t), table=t)
        assert res.phc_after > res.phc_before
        assert res.row_moves >= 1

    def test_noop_on_optimal_schedule(self):
        t = ReorderTable(("a",), [("x",), ("x",), ("y",)])
        _, sched, _ = ggr(t)
        res = refine(sched, table=t)
        assert res.improvement == 0

    def test_time_limit_respected(self):
        t = ReorderTable(
            ("a", "b"),
            [(f"v{i % 4}", f"w{i % 3}") for i in range(60)],
        )
        res = refine(RequestSchedule.identity(t), table=t, time_limit_s=0.001)
        assert res.seconds < 1.0
        res.schedule.validate_against(t)

    def test_disable_row_moves(self):
        t = ReorderTable(("g",), [("A",), ("B",), ("A",)])
        res = refine(RequestSchedule.identity(t), table=t, enable_row_moves=False)
        assert res.row_moves == 0


values = st.sampled_from(["a", "bb", "ccc", "d"])


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    m = draw(st.integers(min_value=1, max_value=3))
    return ReorderTable(
        [f"f{i}" for i in range(m)],
        [tuple(draw(values) for _ in range(m)) for _ in range(n)],
    )


@settings(max_examples=50, deadline=None)
@given(tables())
def test_property_refine_monotone_and_valid(table):
    sched = RequestSchedule.identity(table)
    res = refine(sched, table=table)
    res.schedule.validate_against(table)
    assert res.phc_after >= phc(RequestSchedule.identity(table))


@settings(max_examples=30, deadline=None)
@given(tables())
def test_property_refining_ggr_never_hurts(table):
    ggr_res = reorder(table, "ggr")
    refined = refine(ggr_res.schedule, table=table)
    assert refined.phc_after >= ggr_res.exact_phc
