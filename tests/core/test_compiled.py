"""Tests for the dictionary-encoded columnar table (compiled fast path)."""

import pytest

from repro.core.compiled import (
    HAVE_NUMPY,
    CompiledTable,
    compile_table,
    fastpath_enabled,
    schedule_from_layout,
)
from repro.core.table import ReorderTable
from repro.errors import SolverError

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def make_table():
    return ReorderTable(
        ("a", "b"),
        [("zz", "one"), ("aa", "two"), ("zz", "three"), ("mm", "one")],
    )


class TestCompiledTable:
    def test_codes_roundtrip_to_values(self):
        t = make_table()
        ct = compile_table(t)
        for i in range(t.n_rows):
            for j in range(t.n_fields):
                assert ct.values[j][ct.codes[i, j]] == t.rows[i][j]

    def test_codes_are_lexicographic(self):
        # The fast paths rely on integer code order == string sort order.
        ct = compile_table(make_table())
        for j in range(ct.n_fields):
            assert list(ct.values[j]) == sorted(ct.values[j])

    def test_lengths_and_squares(self):
        t = make_table()
        ct = compile_table(t)
        for i in range(t.n_rows):
            for j in range(t.n_fields):
                assert ct.lengths[i, j] == len(t.rows[i][j])
                assert ct.sq_lengths[i, j] == len(t.rows[i][j]) ** 2

    def test_first_pos_tracks_first_occurrence(self):
        t = make_table()
        ct = compile_table(t)
        code_zz = ct.values[0].index("zz")
        assert ct.first_pos[0][code_zz] == 0
        code_mm = ct.values[0].index("mm")
        assert ct.first_pos[0][code_mm] == 3

    def test_compile_is_cached_per_table(self):
        t = make_table()
        assert compile_table(t) is compile_table(t)

    def test_distinct_tables_get_distinct_encodings(self):
        assert compile_table(make_table()) is not compile_table(make_table())

    def test_cell_pool_shares_objects(self):
        t = make_table()
        ct = compile_table(t)
        pool = ct.cell_pool(0)
        assert ct.row_cells(0, (0,))[0] is ct.row_cells(2, (0,))[0]
        assert all(c.field == "a" for c in pool)

    def test_empty_table(self):
        ct = compile_table(ReorderTable(("a",), []))
        assert ct.n_rows == 0
        sched = schedule_from_layout(ct, [])
        assert len(sched) == 0


class TestScheduleFromLayout:
    def test_valid_layout(self):
        t = make_table()
        ct = compile_table(t)
        layout = [(i, (1, 0)) for i in range(t.n_rows)]
        sched = schedule_from_layout(ct, layout)
        sched.validate_against(t)
        assert [r.row_id for r in sched.rows] == [0, 1, 2, 3]
        assert sched.rows[0].cells[0].field == "b"

    def test_rejects_duplicate_row(self):
        ct = compile_table(make_table())
        with pytest.raises(SolverError):
            schedule_from_layout(ct, [(0, (0, 1))] * 4)

    def test_rejects_bad_field_order(self):
        ct = compile_table(make_table())
        with pytest.raises(SolverError):
            schedule_from_layout(
                ct, [(i, (0, 0)) for i in range(4)]
            )

    def test_rejects_wrong_row_count(self):
        ct = compile_table(make_table())
        with pytest.raises(SolverError):
            schedule_from_layout(ct, [(0, (0, 1))])


class TestFastpathFlag:
    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "0")
        assert not fastpath_enabled()
        monkeypatch.setenv("REPRO_CORE_FASTPATH", "1")
        assert fastpath_enabled() == HAVE_NUMPY

    def test_default_enabled_with_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORE_FASTPATH", raising=False)
        assert fastpath_enabled() == HAVE_NUMPY
