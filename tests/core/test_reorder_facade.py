"""Tests for the reorder() facade."""

import pytest

from repro import ReorderTable, reorder
from repro.core.phc import phc
from repro.core.reorder import POLICIES
from repro.errors import SolverError


def make_table():
    return ReorderTable(
        ("id", "grp", "txt"),
        [
            ("i1", "G", "hello"),
            ("i2", "G", "hello"),
            ("i3", "H", "world"),
            ("i4", "G", "hello"),
        ],
    )


class TestFacade:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_emits_valid_schedule(self, policy):
        t = make_table()
        res = reorder(t, policy=policy)
        res.schedule.validate_against(t)
        assert res.exact_phc == phc(res.schedule)
        assert res.solver_seconds >= 0.0
        assert 0.0 <= res.exact_phr <= 1.0

    def test_unknown_policy(self):
        with pytest.raises(SolverError):
            reorder(make_table(), policy="magic")

    def test_ggr_beats_original_here(self):
        t = make_table()
        assert reorder(t, "ggr").exact_phc > reorder(t, "original").exact_phc

    def test_ophr_at_least_ggr(self):
        t = make_table()
        assert reorder(t, "ophr").exact_phc >= reorder(t, "ggr").exact_phc

    def test_ggr_report_present_only_for_ggr(self):
        t = make_table()
        assert reorder(t, "ggr").ggr_report is not None
        assert reorder(t, "original").ggr_report is None

    def test_estimated_matches_exact_for_exact_policies(self):
        t = make_table()
        for policy in ("original", "sorted", "fixed_stats", "ophr"):
            res = reorder(t, policy)
            assert res.estimated_phc == pytest.approx(res.exact_phc)
