"""Tests for partition-parallel reordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FunctionalDependencies
from repro.core.ordering import RequestSchedule
from repro.core.partitioned import PARTITION_MODES, partitioned_reorder
from repro.core.phc import phc
from repro.core.reorder import reorder
from repro.core.table import ReorderTable
from repro.errors import SolverError


def grouped_table(n_groups=6, per_group=8):
    rows = []
    for g in range(n_groups):
        for k in range(per_group):
            rows.append((f"row-{g}-{k}", f"group-{g}", f"shared-desc-{g}" * 3))
    return ReorderTable(("uid", "grp", "desc"), rows)


class TestBasics:
    @pytest.mark.parametrize("mode", PARTITION_MODES)
    def test_valid_schedule_every_mode(self, mode):
        t = grouped_table()
        res = partitioned_reorder(t, n_partitions=4, mode=mode)
        res.schedule.validate_against(t)
        assert res.exact_phc == phc(res.schedule)

    def test_single_partition_equals_whole_solve(self):
        t = grouped_table()
        whole = reorder(t, "ggr")
        part = partitioned_reorder(t, n_partitions=1, mode="range")
        assert part.exact_phc == whole.exact_phc

    def test_invalid_args(self):
        t = grouped_table()
        with pytest.raises(SolverError):
            partitioned_reorder(t, n_partitions=0)
        with pytest.raises(SolverError):
            partitioned_reorder(t, 2, mode="shuffle")

    def test_more_partitions_than_rows(self):
        t = grouped_table(2, 2)
        res = partitioned_reorder(t, n_partitions=50, mode="range")
        res.schedule.validate_against(t)

    def test_empty_table(self):
        t = ReorderTable(("a",), [])
        res = partitioned_reorder(t, n_partitions=4)
        assert res.exact_phc == 0 and len(res.schedule) == 0


class TestQuality:
    def test_clustered_beats_round_robin(self):
        # Round-robin scatters groups across partitions, destroying
        # within-partition sharing; clustering keeps groups whole.
        t = grouped_table(n_groups=8, per_group=8)
        rr = partitioned_reorder(t, 4, mode="round_robin", order_partitions=False)
        cl = partitioned_reorder(t, 4, mode="clustered", order_partitions=False)
        assert cl.exact_phc > rr.exact_phc

    def test_clustered_close_to_whole_table(self):
        t = grouped_table(n_groups=8, per_group=8)
        whole = reorder(t, "ggr")
        cl = partitioned_reorder(t, 4, mode="clustered")
        assert cl.exact_phc >= 0.9 * whole.exact_phc

    def test_partition_sizes_balanced_clustered(self):
        t = grouped_table(n_groups=8, per_group=8)
        res = partitioned_reorder(t, 4, mode="clustered")
        assert max(res.partition_sizes) <= 2 * min(res.partition_sizes)

    def test_critical_path_below_total(self):
        t = grouped_table(n_groups=8, per_group=8)
        res = partitioned_reorder(t, 4, mode="range")
        assert res.critical_path_seconds <= sum(res.per_partition_seconds) + 1e-9

    def test_fds_passed_through(self):
        t = grouped_table()
        fds = FunctionalDependencies.from_groups([["grp", "desc"]])
        res = partitioned_reorder(t, 3, fds=fds)
        res.schedule.validate_against(t)


values = st.sampled_from(["a", "bb", "ccc"])


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    m = draw(st.integers(min_value=1, max_value=3))
    return ReorderTable(
        [f"f{i}" for i in range(m)],
        [tuple(draw(values) for _ in range(m)) for _ in range(n)],
    )


@settings(max_examples=40, deadline=None)
@given(tables(), st.integers(min_value=1, max_value=5),
       st.sampled_from(PARTITION_MODES))
def test_property_partitioned_always_valid(table, k, mode):
    res = partitioned_reorder(table, k, mode=mode)
    res.schedule.validate_against(table)
    assert res.exact_phc >= 0


class TestAvailableCpus:
    """Worker-count detection must not rely on os.sched_getaffinity
    existing (macOS/Windows do not define it)."""

    def test_falls_back_to_cpu_count(self, monkeypatch):
        import os

        from repro.core.partitioned import _available_cpus

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert _available_cpus() == 7

    def test_cpu_count_none_degrades_to_one(self, monkeypatch):
        import os

        from repro.core.partitioned import _available_cpus

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert _available_cpus() == 1

    def test_parallel_solve_without_affinity_attr(self, monkeypatch):
        """End to end: parallel=True still solves (degrading to whatever
        cpu_count reports) when the attribute is missing entirely."""
        import os

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        table = ReorderTable(
            ["f0", "f1"], [(str(i % 3), str(i % 2)) for i in range(12)]
        )
        res = partitioned_reorder(table, 3, mode="round_robin", parallel=True)
        res.schedule.validate_against(table)
