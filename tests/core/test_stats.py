"""Tests for per-column table statistics."""

import pytest

from repro.core.stats import ColumnStats, TableStats
from repro.core.table import ReorderTable


def make_table():
    return ReorderTable(
        ("short_dup", "long_uniq"),
        [("aa", "unique-value-0"), ("aa", "unique-value-1"), ("bb", "unique-value-2")],
    )


class TestTableStats:
    def test_compute_basic(self):
        stats = TableStats.compute(make_table())
        col = stats.column("short_dup")
        assert col.n_rows == 3
        assert col.n_distinct == 2
        assert col.avg_len == 2.0
        assert col.top_value == "aa" and col.top_count == 2

    def test_duplication(self):
        stats = TableStats.compute(make_table())
        assert stats.column("short_dup").duplication == pytest.approx(1 / 3)
        assert stats.column("long_uniq").duplication == 0.0

    def test_expected_score_prefers_duplicated_column(self):
        stats = TableStats.compute(make_table())
        order = stats.field_order_by_score("expected")
        assert order[0] == "short_dup"

    def test_paper_score_prefers_long_column(self):
        # The printed formula ignores frequency, so the long unique column
        # wins — exactly why we default to the weighted variant.
        stats = TableStats.compute(make_table())
        order = stats.field_order_by_score("paper")
        assert order[0] == "long_uniq"

    def test_invalid_mode(self):
        stats = TableStats.compute(make_table())
        with pytest.raises(ValueError):
            stats.column("short_dup").score("bogus")

    def test_unknown_column(self):
        stats = TableStats.compute(make_table())
        with pytest.raises(KeyError):
            stats.column("nope")

    def test_empty_table(self):
        stats = TableStats.compute(ReorderTable(("a",), []))
        assert stats.column("a").avg_len == 0.0
        assert stats.column("a").duplication == 0.0

    def test_tie_break_is_by_name(self):
        t = ReorderTable(("b", "a"), [("xx", "xx"), ("xx", "xx")])
        stats = TableStats.compute(t)
        assert stats.field_order_by_score() == ["a", "b"]
