"""Tests for ReorderTable and schedule containers."""

import pytest

from repro.core.ordering import RequestSchedule
from repro.core.table import Cell, OrderedRow, ReorderTable
from repro.errors import SchemaError, SolverError


class TestReorderTable:
    def test_basic_shape(self):
        t = ReorderTable(("a", "b"), [("1", "2"), ("3", "4")])
        assert (t.n_rows, t.n_fields) == (2, 2)

    def test_values_coerced_to_str(self):
        t = ReorderTable(("a",), [(1,), (2.5,)])
        assert t.rows == (("1",), ("2.5",))

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            ReorderTable(("a", "a"), [])

    def test_ragged_rows_rejected(self):
        with pytest.raises(SchemaError):
            ReorderTable(("a", "b"), [("1",)])

    def test_field_index_and_column(self):
        t = ReorderTable(("a", "b"), [("1", "2"), ("3", "4")])
        assert t.field_index("b") == 1
        assert t.column("b") == ("2", "4")
        assert t.column(0) == ("1", "3")

    def test_unknown_field(self):
        t = ReorderTable(("a",), [("1",)])
        with pytest.raises(SchemaError):
            t.field_index("zzz")

    def test_select_fields_projects_and_reorders(self):
        t = ReorderTable(("a", "b", "c"), [("1", "2", "3")])
        sub = t.select_fields(["c", "a"])
        assert sub.fields == ("c", "a")
        assert sub.rows == (("3", "1"),)

    def test_head(self):
        t = ReorderTable(("a",), [("1",), ("2",), ("3",)])
        assert t.head(2).rows == (("1",), ("2",))

    def test_empty_table(self):
        t = ReorderTable(("a",), [])
        assert t.n_rows == 0 and len(t) == 0


class TestCell:
    def test_weight_is_squared_length(self):
        assert Cell("f", "abc").weight() == 9

    def test_hashable(self):
        assert len({Cell("f", "x"), Cell("f", "x"), Cell("g", "x")}) == 2


class TestRequestSchedule:
    def make_table(self):
        return ReorderTable(("a", "b"), [("1", "2"), ("3", "4"), ("5", "6")])

    def test_identity_round_trip(self):
        t = self.make_table()
        sched = RequestSchedule.identity(t)
        sched.validate_against(t)
        assert sched.row_ids() == [0, 1, 2]
        assert sched.rows[1].values() == ("3", "4")
        assert sched.rows[1].fields() == ("a", "b")

    def test_from_orders_validates(self):
        t = self.make_table()
        sched = RequestSchedule.from_orders(t, [2, 0, 1], [[1, 0]] * 3)
        assert sched.rows[0].values() == ("6", "5")

    def test_inverse_permutation(self):
        t = self.make_table()
        sched = RequestSchedule.from_orders(t, [2, 0, 1], [[0, 1]] * 3)
        inv = sched.inverse_permutation()
        assert inv == [1, 2, 0]

    def test_duplicate_row_rejected(self):
        t = self.make_table()
        sched = RequestSchedule(
            rows=[
                OrderedRow(0, (Cell("a", "1"), Cell("b", "2"))),
                OrderedRow(0, (Cell("a", "1"), Cell("b", "2"))),
                OrderedRow(1, (Cell("a", "3"), Cell("b", "4"))),
            ]
        )
        with pytest.raises(SolverError):
            sched.validate_against(t)

    def test_wrong_cells_rejected(self):
        t = self.make_table()
        sched = RequestSchedule.identity(t)
        sched.rows[0] = OrderedRow(0, (Cell("a", "WRONG"), Cell("b", "2")))
        with pytest.raises(SolverError):
            sched.validate_against(t)

    def test_missing_rows_rejected(self):
        t = self.make_table()
        sched = RequestSchedule(rows=[OrderedRow(0, (Cell("a", "1"), Cell("b", "2")))])
        with pytest.raises(SolverError):
            sched.validate_against(t)
