"""Start-method equivalence for the partitioned process pool.

``partitioned_reorder(parallel=True)`` must produce the identical schedule
no matter how the workers are started — copy-on-write fork, spawn or
forkserver attaching the table from its shared-memory dictionary-code
export, or no pool at all — and must record which method and table
transport it actually used, so bench runs on platforms with different
defaults (fork on Linux, spawn on macOS/Windows) stay comparable.

Pool workers are capped at 2: the suite must exercise real pools even on
single-CPU CI runners, where the default worker count degrades to the
sequential path.
"""

import multiprocessing as mp
import random

import pytest

from repro.core.compiled import HAVE_NUMPY
from repro.core.fd import FunctionalDependencies
from repro.core.partitioned import partitioned_reorder
from repro.core.table import ReorderTable
from repro.errors import SolverError


def random_table(rng, n_rows=40, n_fields=4, n_groups=5):
    """Grouped rows with duplicated long values (dictionary-friendly)."""
    fields = tuple(f"f{i}" for i in range(n_fields))
    rows = []
    for r in range(n_rows):
        g = rng.randrange(n_groups)
        rows.append(
            tuple(
                f"grp{g}-field{i}-" + "v" * rng.randrange(1, 8)
                if rng.random() < 0.7
                else f"row{r}-field{i}"
                for i in range(n_fields)
            )
        )
    return ReorderTable(fields, rows)


def schedule_key(res):
    """Bit-exact identity of a schedule: row order and per-row cells."""
    return [(r.row_id, r.cells) for r in res.schedule]


def pool_methods():
    methods = [m for m in mp.get_all_start_methods() if m != "forkserver"]
    # forkserver is fork + a server process; covering fork and spawn spans
    # both transports (cow-fork and shared-memory/pickle).
    return methods


class TestStartMethodEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_methods_identical_to_sequential(self, seed):
        rng = random.Random(seed)
        table = random_table(rng)
        fds = FunctionalDependencies.from_groups([["f0", "f1"]])
        seq = partitioned_reorder(table, 4, fds=fds, parallel=False)
        assert seq.start_method == "in-process"
        assert seq.worker_transport == "in-process"
        want = schedule_key(seq)
        for method in pool_methods():
            res = partitioned_reorder(
                table,
                4,
                fds=fds,
                parallel=True,
                max_workers=2,
                start_method=method,
            )
            assert schedule_key(res) == want, method
            assert res.exact_phc == seq.exact_phc
            # A degraded pool records in-process; otherwise the requested
            # method must be the one used.
            assert res.start_method in (method, "in-process")

    @pytest.mark.parametrize("seed", range(2))
    def test_spawn_matches_fork_bit_identical(self, seed):
        if not {"fork", "spawn"} <= set(mp.get_all_start_methods()):
            pytest.skip("platform lacks fork or spawn")
        rng = random.Random(100 + seed)
        table = random_table(rng, n_rows=30, n_groups=4)
        kw = dict(parallel=True, max_workers=2)
        forked = partitioned_reorder(table, 3, start_method="fork", **kw)
        spawned = partitioned_reorder(table, 3, start_method="spawn", **kw)
        assert schedule_key(spawned) == schedule_key(forked)
        assert spawned.exact_phc == forked.exact_phc


class TestTransportMetadata:
    def test_fork_records_cow_transport(self):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("no fork on this platform")
        table = random_table(random.Random(7))
        res = partitioned_reorder(
            table, 4, parallel=True, max_workers=2, start_method="fork"
        )
        if res.start_method == "fork":  # pool may degrade in sandboxes
            assert res.worker_transport == "cow-fork"

    def test_spawn_records_shared_memory_transport(self):
        if "spawn" not in mp.get_all_start_methods():
            pytest.skip("no spawn on this platform")
        table = random_table(random.Random(8))
        res = partitioned_reorder(
            table, 4, parallel=True, max_workers=2, start_method="spawn"
        )
        if res.start_method == "spawn":
            expected = "shared-memory" if HAVE_NUMPY else "pickle"
            assert res.worker_transport == expected

    def test_unknown_start_method_rejected(self):
        table = random_table(random.Random(9))
        with pytest.raises(SolverError):
            partitioned_reorder(
                table, 4, parallel=True, max_workers=2, start_method="thread"
            )

    def test_sequential_metadata(self):
        table = random_table(random.Random(10))
        res = partitioned_reorder(table, 4, parallel=False)
        assert res.n_workers == 1
        assert res.start_method == "in-process"
        assert res.worker_transport == "in-process"
