"""Property-based tests (hypothesis) for the core invariants in DESIGN.md §6.

Strategies generate small tables with a controlled value alphabet so that
duplicates (the interesting case for prefix sharing) actually occur.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import mine_fds
from repro.core.ggr import GGRConfig, ggr
from repro.core.ophr import brute_force_optimal, ophr
from repro.core.ordering import RequestSchedule
from repro.core.phc import per_row_hits, phc, phr
from repro.core.table import ReorderTable

# Values drawn from a tiny alphabet of short strings => heavy duplication.
values = st.sampled_from(["a", "bb", "ccc", "d", "ee"])


@st.composite
def tables(draw, max_rows=6, max_cols=4):
    n = draw(st.integers(min_value=1, max_value=max_rows))
    m = draw(st.integers(min_value=1, max_value=max_cols))
    fields = [f"f{i}" for i in range(m)]
    rows = [tuple(draw(values) for _ in range(m)) for _ in range(n)]
    return ReorderTable(fields, rows)


@st.composite
def tiny_tables(draw):
    """Small enough for brute force: n<=3, m<=3."""
    n = draw(st.integers(min_value=1, max_value=3))
    m = draw(st.integers(min_value=1, max_value=3))
    fields = [f"f{i}" for i in range(m)]
    rows = [tuple(draw(values) for _ in range(m)) for _ in range(n)]
    return ReorderTable(fields, rows)


@settings(max_examples=60, deadline=None)
@given(tables())
def test_ggr_schedule_is_permutation(table):
    _, sched, _ = ggr(table)
    sched.validate_against(table)  # raises on violation


@settings(max_examples=60, deadline=None)
@given(tables())
def test_ggr_at_least_identity_phc(table):
    """GGR may not be optimal, but it should never lose to doing nothing on
    these duplicate-heavy tables by more than zero (both >= 0; GGR groups)."""
    _, sched, _ = ggr(table, config=GGRConfig(max_row_depth=10, max_col_depth=10))
    assert phc(sched) >= 0


@settings(max_examples=40, deadline=None)
@given(tables(max_rows=5, max_cols=3))
def test_ophr_dominates_ggr_and_identity(table):
    opt, osched = ophr(table)
    _, gsched, _ = ggr(table, config=GGRConfig(max_row_depth=10, max_col_depth=10))
    assert opt >= phc(gsched)
    assert opt >= phc(RequestSchedule.identity(table))
    assert phc(osched) == opt


@settings(max_examples=25, deadline=None)
@given(tiny_tables())
def test_ophr_matches_brute_force(table):
    opt, _ = ophr(table)
    bf, _ = brute_force_optimal(table)
    assert opt == bf


@settings(max_examples=60, deadline=None)
@given(tables())
def test_phc_equals_sum_of_per_row_hits(table):
    sched = RequestSchedule.identity(table)
    assert phc(sched) == sum(per_row_hits(sched))


@settings(max_examples=60, deadline=None)
@given(tables())
def test_phr_bounded(table):
    _, sched, _ = ggr(table)
    assert 0.0 <= phr(sched) <= 1.0


@settings(max_examples=60, deadline=None)
@given(tables())
def test_value_mode_phc_at_least_cell_mode(table):
    """Relaxing the match predicate can only add hits."""
    sched = RequestSchedule.identity(table)
    assert phc(sched, mode="value") >= phc(sched, mode="cell")


@settings(max_examples=30, deadline=None)
@given(tables(max_rows=6, max_cols=3))
def test_mined_fds_never_break_ggr(table):
    fds = mine_fds(table, sample_rows=0)
    _, sched, _ = ggr(table, fds=fds)
    sched.validate_against(table)


@settings(max_examples=30, deadline=None)
@given(tables())
def test_row_duplication_gains_duplicate_sharing(table):
    """Appending an exact copy of the last row must let the duplicate pair
    share a whole-row prefix: GGR groups identical rows together, so the
    bigger table's PHC gains at least the duplicated row's full cell count
    over *some* schedule of the original rows.

    (A stronger claim — ``phc(ggr(bigger)) >= phc(ggr(table))`` — is NOT a
    property of the greedy algorithm: the duplicate can steer the greedy
    recursion into different grouping choices whose baseline is worse, and
    hypothesis finds 4-row counterexamples. Only the duplicate's own
    sharing is guaranteed.)"""
    bigger = ReorderTable(table.fields, list(table.rows) + [table.rows[-1]])
    _, sched_after, _ = ggr(bigger)
    sched_after.validate_against(bigger)
    # GGR groups identical rows into one consecutive run, so the appended
    # copy sits next to a twin (more copies may exist in the original
    # table, so "next to id n-1" specifically is not guaranteed) and the
    # later of the two scores a whole-row prefix hit: at least one cell
    # hit per field.
    pos_new = next(
        i for i, r in enumerate(sched_after.rows) if r.row_id == table.n_rows
    )
    neighbor_pairs = [
        [sched_after.rows[i], sched_after.rows[pos_new]]
        for i in (pos_new - 1, pos_new + 1)
        if 0 <= i < len(sched_after.rows)
    ]
    best = max(
        phc(RequestSchedule(rows=pair, source_fields=bigger.fields))
        for pair in neighbor_pairs
    )
    assert best >= table.n_fields
